// Observability benchmark, three scenarios:
//
// 1. Staleness vs delay window (§7): the cost of batching is temporal
//    staleness of the derived data. The same scaled PTA trace is replayed
//    against the unique-on-comp rule (Figure 7) at several delay windows;
//    for every recompute commit the engine's staleness probe records the
//    age of the oldest batched change consumed. Longer windows batch more
//    firings per task — fewer, cheaper recomputes — but staler data.
//
// 2. Burst overload: a 4-worker threaded database under a trickle of
//    updates, then a burst far beyond capacity, then a drain. A Watchdog
//    with a queue-wait p99 SLO is evaluated throughout; the scenario must
//    show the full ok -> shed -> ok cycle (breach hysteresis on the way
//    in, clean-interval hysteresis on the way out) and leaves the
//    per-rule queue/lock/exec histograms populated in the snapshot.
//
// 3. Tracing overhead A/B: the same threaded PTA workload with the
//    observability layer on vs off (--no-metrics equivalent); full
//    tracing must cost <= 5% wall time at 4 workers.
//
// Usage: bench_observability [--full | --scale=F] [--seed=N]
//
// Emits BENCH_observability.json (canonical BenchReport schema) with one
// entry per delay window, the burst-overload watchdog timeline, and the
// overhead ratio (the export surface the paper-era system lacked).

#include <atomic>
#include <chrono>
#include <thread>

#include "pta_bench_common.h"
#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/obs/watchdog.h"

namespace strip::bench {
namespace {

// ---------------------------------------------------------------------------
// Scenario 2: burst overload.

struct BurstEval {
  std::string phase;          // trickle / burst / drain
  WatchdogState state;
  std::string verdict_json;   // WatchdogVerdict::ToJson()
};

struct BurstOutcome {
  std::vector<BurstEval> timeline;
  bool reached_shed = false;
  bool recovered = false;     // shed happened AND final state is ok
  uint64_t updates_submitted = 0;
  double wall_seconds = 0;
  std::string metrics_json;   // registry snapshot after the drain
};

constexpr int kBurstSyms = 32;
constexpr int kTrickleUpdates = 90;
constexpr int kBurstUpdates = 1500;
// Injected per-update service time during the burst: guarantees the
// backlog drains over ~100 ms of wall time so several watchdog intervals
// observe breaching queue waits, independent of host speed.
constexpr int kBurstServiceMicros = 200;

Result<BurstOutcome> RunBurstOverload() {
  Database::Options db_opts;
  db_opts.mode = ExecutorMode::kThreaded;
  db_opts.num_workers = 4;
  db_opts.enable_metrics = true;
  Database db(db_opts);

  STRIP_RETURN_IF_ERROR(db.ExecuteScript(R"(
    create table quotes (sym string, price double);
    create index on quotes (sym);
    create table latest (sym string, price double, firings int);
    create index on latest (sym);
  )"));
  std::vector<Value> symbols;
  for (int i = 0; i < kBurstSyms; ++i) {
    std::string sym = StrFormat("B%02d", i);
    STRIP_RETURN_IF_ERROR(
        db.Execute(StrFormat("insert into quotes values ('%s', 100.0)",
                             sym.c_str()))
            .status());
    STRIP_RETURN_IF_ERROR(
        db.Execute(StrFormat("insert into latest values ('%s', 100.0, 0)",
                             sym.c_str()))
            .status());
    symbols.push_back(Value::Str(sym));
  }

  // Maintained computation: latest mirrors the last committed quote price,
  // one unique-on-sym firing per symbol per window (Figure 7's shape).
  STRIP_RETURN_IF_ERROR(db.RegisterFunction(
      "track_latest", [](FunctionContext& ctx) -> Status {
        const TempTable* changed = ctx.BoundTable("changed");
        if (changed == nullptr || changed->size() == 0) {
          return Status::Internal("track_latest: empty bound table");
        }
        const std::string sym = changed->Get(0, 0).as_string();
        Result<TempTable> price = ctx.Query(StrFormat(
            "select price from quotes where sym = '%s'", sym.c_str()));
        STRIP_RETURN_IF_ERROR(price.status());
        if (price->size() != 1) {
          return Status::Internal("track_latest: bad quote row count");
        }
        return ctx.Exec(StrFormat("update latest set price = %f, "
                                  "firings += 1 where sym = '%s'",
                                  price->Get(0, 0).as_double(), sym.c_str()))
            .status();
      }));
  STRIP_RETURN_IF_ERROR(db.Execute(R"(
    create rule track_latest on quotes when updated price
    if select new.sym as sym from new bind as changed
    then execute track_latest unique on sym after 0.01 seconds
  )")
                            .status());

  STRIP_ASSIGN_OR_RETURN(
      PreparedStatementPtr update_stmt,
      db.Prepare("update quotes set price = ? where sym = ?"));

  BurstOutcome out;
  std::atomic<uint64_t> submitted{0};

  // One update task per quote, wait-die retry loop like the threaded PTA
  // runner. `service_micros` models per-update downstream work (parsing,
  // enrichment) OUTSIDE the transaction, so the burst backlog drains at a
  // bounded rate without inflating lock hold times.
  auto submit_update = [&](int i, int service_micros) {
    TaskPtr task = db.NewTask();
    task->function_name = "apply_quote";
    const Value price = Value::Double(100.0 + (i % 50));
    const Value& symbol = symbols[static_cast<size_t>(i % kBurstSyms)];
    task->work = [&db, &update_stmt, price, symbol,
                  service_micros](TaskControlBlock&) -> Status {
      if (service_micros > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(service_micros));
      }
      Status last;
      uint64_t priority = 0;
      for (int attempt = 0; attempt <= 10; ++attempt) {
        STRIP_ASSIGN_OR_RETURN(Transaction * txn, db.Begin(priority));
        if (priority == 0) priority = txn->priority();
        auto n = update_stmt->ExecuteDml(txn, {price, symbol});
        Status st = n.ok() ? db.Commit(txn) : n.status();
        if (!n.ok()) {
          Status ignored = db.Abort(txn);
          (void)ignored;
        }
        if (st.ok()) return Status::OK();
        if (st.code() != StatusCode::kAborted) return st;
        last = st;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return last;
    };
    db.Submit(std::move(task));
    submitted.fetch_add(1, std::memory_order_relaxed);
  };

  // The SLO under test: queue-wait p99 of 2 ms. Trickle-phase waits are
  // tens of microseconds; the burst backlog pushes them to tens of
  // milliseconds. Staleness is left un-SLO'd (the delay window is a
  // deliberate 10 ms) and the lock-abort threshold is generous — this
  // scenario is about queueing, not contention.
  WatchdogSlo slo;
  slo.queue_wait_p99_us = 2000;
  slo.max_lock_abort_rate = 0.5;
  Watchdog dog(&db.metrics(), slo);
  std::atomic<int> shed_callbacks{0};
  dog.set_on_shed([&](const WatchdogVerdict&) {
    shed_callbacks.fetch_add(1, std::memory_order_relaxed);
  });

  auto observe = [&](const char* phase) {
    WatchdogVerdict v = dog.Evaluate(db.Now());
    out.timeline.push_back({phase, v.state, v.ToJson()});
    if (v.state == WatchdogState::kShed) out.reached_shed = true;
    std::printf("  [%s] watchdog %s%s%s\n", phase, WatchdogStateName(v.state),
                v.worst_signal.empty() ? "" : " worst=",
                v.worst_signal.c_str());
  };

  Timestamp t0 = db.Now();
  observe("baseline");  // first evaluation only records baselines

  // Phase 1: trickle — one update every 2 ms, watchdog stays ok.
  for (int i = 0; i < kTrickleUpdates; ++i) {
    submit_update(i, /*service_micros=*/0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (i % 30 == 29) observe("trickle");
  }

  // Phase 2: burst — far beyond 4-worker capacity, submitted all at once.
  // Evaluate every 25 ms while the backlog drains; the queue-wait SLO
  // breaches on consecutive intervals and trips the watchdog to shed.
  for (int i = 0; i < kBurstUpdates; ++i) {
    submit_update(kTrickleUpdates + i, kBurstServiceMicros);
  }
  for (int evals = 0; dog.state() != WatchdogState::kShed && evals < 40;
       ++evals) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    observe("burst");
  }

  // Phase 3: drain to quiescence, then clean intervals clear the verdict
  // back to ok (the recovery half of the hysteresis).
  db.threaded()->Drain();
  for (int evals = 0; dog.state() != WatchdogState::kOk && evals < 40;
       ++evals) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    observe("drain");
  }

  out.recovered = out.reached_shed && dog.state() == WatchdogState::kOk &&
                  shed_callbacks.load() >= 1;
  out.updates_submitted = submitted.load();
  out.wall_seconds = static_cast<double>(db.Now() - t0) / 1e6;
  out.metrics_json = db.metrics().SnapshotJson();
  return out;
}

// ---------------------------------------------------------------------------
// Scenario 3: tracing overhead A/B.

struct OverheadOutcome {
  double wall_seconds_metrics = 0;     // best of kReps, observability on
  double wall_seconds_no_metrics = 0;  // best of kReps, observability off
  double overhead_fraction = 0;        // (on - off) / off, clamped at 0
};

Result<OverheadOutcome> RunOverheadAb(const SweepOptions& opts) {
  ThreadedPtaOptions base;
  base.num_workers = 4;
  base.scale = opts.scale;
  base.seed = opts.seed;
  // No injected order-submission stall: the A/B measures the engine's own
  // CPU path, and a 20 ms sleep per firing would drown the difference.
  base.order_latency_micros = 0;

  // Best-of-N wall time per configuration filters scheduler noise, which
  // at smoke scales is far larger than the effect being measured.
  constexpr int kReps = 3;
  auto best_wall = [&](bool enable_metrics) -> Result<double> {
    double best = 0;
    for (int r = 0; r < kReps; ++r) {
      ThreadedPtaOptions o = base;
      o.enable_metrics = enable_metrics;
      STRIP_ASSIGN_OR_RETURN(ThreadedPtaResult res, RunThreadedPta(o));
      if (r == 0 || res.wall_seconds < best) best = res.wall_seconds;
    }
    return best;
  };

  OverheadOutcome out;
  STRIP_ASSIGN_OR_RETURN(out.wall_seconds_no_metrics, best_wall(false));
  STRIP_ASSIGN_OR_RETURN(out.wall_seconds_metrics, best_wall(true));
  if (out.wall_seconds_no_metrics > 0) {
    out.overhead_fraction =
        (out.wall_seconds_metrics - out.wall_seconds_no_metrics) /
        out.wall_seconds_no_metrics;
    if (out.overhead_fraction < 0) out.overhead_fraction = 0;
  }
  return out;
}

int Run(const SweepOptions& opts) {
  TraceOptions trace_opts = TraceOptions::Scaled(opts.scale);
  trace_opts.seed = opts.seed;
  std::printf("generating trace: %d stocks, %.0f s, ~%d updates ...\n",
              trace_opts.num_stocks, trace_opts.duration_seconds,
              trace_opts.target_updates);
  MarketTrace trace = MarketTrace::Generate(trace_opts);
  PtaConfig cfg = PtaConfig::PaperScale();

  std::vector<PtaRunResult> results;
  for (double delay : opts.delays) {
    std::printf("running unique_on_comp, delay %.2f s ...\n", delay);
    auto r = RunPtaExperiment(
        trace, cfg, CompRuleSql(CompRuleVariant::kUniqueOnComp, delay));
    if (!r.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(*r));
  }

  std::printf("\n%-8s %12s %12s %12s %12s %10s\n", "delay_s", "stale_p50_s",
              "stale_p95_s", "stale_max_s", "batch_factor", "recomputes");
  for (size_t d = 0; d < opts.delays.size(); ++d) {
    const PtaRunResult& r = results[d];
    std::printf("%-8.2f %12.3f %12.3f %12.3f %12.2f %10llu\n",
                opts.delays[d], r.p50_staleness_seconds,
                r.p95_staleness_seconds, r.max_staleness_seconds,
                r.avg_batching_factor,
                static_cast<unsigned long long>(r.num_recomputes));
  }

  std::printf("\nburst overload (4 workers, %d trickle + %d burst) ...\n",
              kTrickleUpdates, kBurstUpdates);
  auto burst = RunBurstOverload();
  if (!burst.ok()) {
    std::fprintf(stderr, "burst scenario failed: %s\n",
                 burst.status().ToString().c_str());
    return 1;
  }
  std::printf("burst: reached_shed=%s recovered=%s (%zu evaluations, "
              "%.2f s)\n",
              burst->reached_shed ? "yes" : "NO",
              burst->recovered ? "yes" : "NO", burst->timeline.size(),
              burst->wall_seconds);

  std::printf("\ntracing overhead A/B (4 workers, best of 3) ...\n");
  auto overhead = RunOverheadAb(opts);
  if (!overhead.ok()) {
    std::fprintf(stderr, "overhead A/B failed: %s\n",
                 overhead.status().ToString().c_str());
    return 1;
  }
  std::printf("overhead: metrics %.3f s vs no-metrics %.3f s -> %.1f%%\n",
              overhead->wall_seconds_metrics,
              overhead->wall_seconds_no_metrics,
              100.0 * overhead->overhead_fraction);

  BenchReport report("observability");
  report.Config([&](JsonWriter& w) {
    w.Key("scale").Double(opts.scale);
    w.Key("seed").Uint(opts.seed);
    w.Key("rule_variant").String("unique_on_comp");
    w.Key("delays_seconds").BeginArray();
    for (double d : opts.delays) w.Double(d);
    w.EndArray();
  });
  report.Metrics([&](JsonWriter& w) {
    w.Key("runs").BeginArray();
    for (size_t d = 0; d < opts.delays.size(); ++d) {
      const PtaRunResult& r = results[d];
      w.BeginObject();
      w.Key("delay_seconds").Double(opts.delays[d]);
      w.Key("updates").Uint(r.num_updates);
      w.Key("recomputes").Uint(r.num_recomputes);
      w.Key("tasks_created").Uint(r.tasks_created);
      w.Key("firings_merged").Uint(r.firings_merged);
      w.Key("batching_factor").Double(r.avg_batching_factor);
      w.Key("staleness_p50_seconds").Double(r.p50_staleness_seconds);
      w.Key("staleness_p95_seconds").Double(r.p95_staleness_seconds);
      w.Key("staleness_max_seconds").Double(r.max_staleness_seconds);
      w.Key("recompute_cpu_seconds").Double(r.recompute_cpu_seconds);
      w.Key("failed_tasks").Uint(r.failed_tasks);
      w.EndObject();
    }
    w.EndArray();
    // Full registry snapshot of the last (longest-delay) run: counters,
    // callback gauges, and the per-rule staleness histograms themselves.
    w.Key("registry").Raw(results.back().metrics_json);

    // Burst-overload scenario: the watchdog's verdict timeline and the
    // post-drain snapshot (its rules.{queue_wait,lock_wait,exec}_us.*
    // histograms are the per-rule breakdown CI validates).
    w.Key("burst_overload").BeginObject();
    w.Key("workers").Int(4);
    w.Key("trickle_updates").Int(kTrickleUpdates);
    w.Key("burst_updates").Int(kBurstUpdates);
    w.Key("queue_wait_slo_p99_us").Int(2000);
    w.Key("updates_submitted").Uint(burst->updates_submitted);
    w.Key("wall_seconds").Double(burst->wall_seconds);
    w.Key("reached_shed").Bool(burst->reached_shed);
    w.Key("recovered").Bool(burst->recovered);
    w.Key("timeline").BeginArray();
    for (const BurstEval& e : burst->timeline) {
      w.BeginObject();
      w.Key("phase").String(e.phase);
      w.Key("state").String(WatchdogStateName(e.state));
      w.Key("verdict").Raw(e.verdict_json);
      w.EndObject();
    }
    w.EndArray();
    w.Key("registry").Raw(burst->metrics_json);
    w.EndObject();

    // Tracing-overhead A/B: identical threaded PTA workloads with the
    // observability layer on vs off.
    w.Key("tracing_overhead").BeginObject();
    w.Key("workers").Int(4);
    w.Key("wall_seconds_metrics").Double(overhead->wall_seconds_metrics);
    w.Key("wall_seconds_no_metrics")
        .Double(overhead->wall_seconds_no_metrics);
    w.Key("overhead_fraction").Double(overhead->overhead_fraction);
    w.Key("meets_5pct_target").Bool(overhead->overhead_fraction <= 0.05);
    w.EndObject();
  });
  if (!report.WriteFile("BENCH_observability.json")) {
    std::fprintf(stderr, "cannot write BENCH_observability.json\n");
    return 1;
  }
  std::printf("wrote BENCH_observability.json\n");
  return 0;
}

}  // namespace
}  // namespace strip::bench

int main(int argc, char** argv) {
  return strip::bench::Run(strip::bench::ParseArgs(argc, argv));
}
