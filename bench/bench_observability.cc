// Staleness vs delay window (§7): the cost of batching is temporal
// staleness of the derived data. The same scaled PTA trace is replayed
// against the unique-on-comp rule (Figure 7) at several delay windows;
// for every recompute commit the engine's staleness probe records the age
// of the oldest batched change consumed (action commit time minus feed
// arrival time of the quote). Longer windows batch more firings per task
// — fewer, cheaper recomputes — but the derived comp_prices are staler.
//
// Usage: bench_observability [--full | --scale=F] [--seed=N]
//
// Emits BENCH_observability.json (canonical BenchReport schema) with one
// entry per delay window: staleness p50/p95/max, the batching factor, and
// the final run's full metrics-registry snapshot (the export surface the
// paper-era system lacked).

#include "pta_bench_common.h"

namespace strip::bench {
namespace {

int Run(const SweepOptions& opts) {
  TraceOptions trace_opts = TraceOptions::Scaled(opts.scale);
  trace_opts.seed = opts.seed;
  std::printf("generating trace: %d stocks, %.0f s, ~%d updates ...\n",
              trace_opts.num_stocks, trace_opts.duration_seconds,
              trace_opts.target_updates);
  MarketTrace trace = MarketTrace::Generate(trace_opts);
  PtaConfig cfg = PtaConfig::PaperScale();

  std::vector<PtaRunResult> results;
  for (double delay : opts.delays) {
    std::printf("running unique_on_comp, delay %.2f s ...\n", delay);
    auto r = RunPtaExperiment(
        trace, cfg, CompRuleSql(CompRuleVariant::kUniqueOnComp, delay));
    if (!r.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(*r));
  }

  std::printf("\n%-8s %12s %12s %12s %12s %10s\n", "delay_s", "stale_p50_s",
              "stale_p95_s", "stale_max_s", "batch_factor", "recomputes");
  for (size_t d = 0; d < opts.delays.size(); ++d) {
    const PtaRunResult& r = results[d];
    std::printf("%-8.2f %12.3f %12.3f %12.3f %12.2f %10llu\n",
                opts.delays[d], r.p50_staleness_seconds,
                r.p95_staleness_seconds, r.max_staleness_seconds,
                r.avg_batching_factor,
                static_cast<unsigned long long>(r.num_recomputes));
  }

  BenchReport report("observability");
  report.Config([&](JsonWriter& w) {
    w.Key("scale").Double(opts.scale);
    w.Key("seed").Uint(opts.seed);
    w.Key("rule_variant").String("unique_on_comp");
    w.Key("delays_seconds").BeginArray();
    for (double d : opts.delays) w.Double(d);
    w.EndArray();
  });
  report.Metrics([&](JsonWriter& w) {
    w.Key("runs").BeginArray();
    for (size_t d = 0; d < opts.delays.size(); ++d) {
      const PtaRunResult& r = results[d];
      w.BeginObject();
      w.Key("delay_seconds").Double(opts.delays[d]);
      w.Key("updates").Uint(r.num_updates);
      w.Key("recomputes").Uint(r.num_recomputes);
      w.Key("tasks_created").Uint(r.tasks_created);
      w.Key("firings_merged").Uint(r.firings_merged);
      w.Key("batching_factor").Double(r.avg_batching_factor);
      w.Key("staleness_p50_seconds").Double(r.p50_staleness_seconds);
      w.Key("staleness_p95_seconds").Double(r.p95_staleness_seconds);
      w.Key("staleness_max_seconds").Double(r.max_staleness_seconds);
      w.Key("recompute_cpu_seconds").Double(r.recompute_cpu_seconds);
      w.Key("failed_tasks").Uint(r.failed_tasks);
      w.EndObject();
    }
    w.EndArray();
    // Full registry snapshot of the last (longest-delay) run: counters,
    // callback gauges, and the per-rule staleness histograms themselves.
    w.Key("registry").Raw(results.back().metrics_json);
  });
  if (!report.WriteFile("BENCH_observability.json")) {
    std::fprintf(stderr, "cannot write BENCH_observability.json\n");
    return 1;
  }
  std::printf("wrote BENCH_observability.json\n");
  return 0;
}

}  // namespace
}  // namespace strip::bench

int main(int argc, char** argv) {
  return strip::bench::Run(strip::bench::ParseArgs(argc, argv));
}
