// Figures 12, 13, 14: maintaining the materialized view option_prices
// (§5.2) — non-incremental (Black-Scholes) recomputation with high fan-out
// from stocks to options.
//
//   Figure 12 - CPU fraction spent maintaining option_prices vs delay
//   Figure 13 - number of recomputations N_r vs delay
//   Figure 14 - average recompute transaction length vs delay
//
// Series: non-unique (do_options1, horizontal), unique (coarse), unique on
// stock symbol. As in the paper, unique on option_symbol is omitted from
// the series: the stock->option fan-out makes the number of queued
// transactions unmanageable (§5.2) — run the pta_integration_test to see
// that behavior demonstrated.

#include "pta_bench_common.h"

namespace strip::bench {
namespace {

int Run(const SweepOptions& opts) {
  TraceOptions trace_opts = TraceOptions::Scaled(opts.scale);
  trace_opts.seed = opts.seed;
  std::printf("generating trace: %d stocks, %.0f s, ~%d updates ...\n",
              trace_opts.num_stocks, trace_opts.duration_seconds,
              trace_opts.target_updates);
  MarketTrace trace = MarketTrace::Generate(trace_opts);
  PtaConfig cfg = PtaConfig::PaperScale();

  auto run_one = [&](const std::string& rule_sql) -> PtaRunResult {
    auto r = RunPtaExperiment(trace, cfg, rule_sql);
    if (!r.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    return *r;
  };

  Sweep sweep;
  sweep.delays = opts.delays;
  sweep.variant_names = {"non-unique", "unique", "unique_on_symbol"};

  std::printf("running update-only baseline ...\n");
  sweep.baseline = run_one("");

  std::printf("running non-unique (do_options1) ...\n");
  PtaRunResult nonunique =
      run_one(OptionRuleSql(OptionRuleVariant::kNonUnique, 0));
  sweep.results.push_back(
      std::vector<PtaRunResult>(sweep.delays.size(), nonunique));

  const OptionRuleVariant kVariants[] = {OptionRuleVariant::kUnique,
                                         OptionRuleVariant::kUniqueOnSymbol};
  for (OptionRuleVariant v : kVariants) {
    std::vector<PtaRunResult> row;
    for (double delay : sweep.delays) {
      std::printf("running %s, delay %.2f s ...\n", OptionRuleVariantName(v),
                  delay);
      row.push_back(run_one(OptionRuleSql(v, delay)));
    }
    sweep.results.push_back(std::move(row));
  }

  std::printf("\nbaseline (no rule): %zu updates, %.3f s update CPU\n",
              static_cast<size_t>(sweep.baseline.num_updates),
              sweep.baseline.total_cpu_seconds);

  PrintSeries(sweep,
              "Figure 12: CPU fraction maintaining option_prices vs delay "
              "window (non-unique is the paper's horizontal line)",
              [&](const PtaRunResult& r) {
                return MaintenanceFraction(r, sweep.baseline);
              });
  PrintSeries(sweep, "Figure 13: number of recomputations N_r vs delay window",
              [](const PtaRunResult& r) {
                return static_cast<double>(r.num_recomputes);
              });
  PrintSeries(sweep,
              "Figure 14: average recompute transaction length (us) vs "
              "delay window",
              [](const PtaRunResult& r) { return r.avg_recompute_micros; });
  return 0;
}

}  // namespace
}  // namespace strip::bench

int main(int argc, char** argv) {
  return strip::bench::Run(strip::bench::ParseArgs(argc, argv));
}
