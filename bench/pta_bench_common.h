#ifndef STRIP_BENCH_PTA_BENCH_COMMON_H_
#define STRIP_BENCH_PTA_BENCH_COMMON_H_

// Shared sweep harness for the Figure 9-14 benchmarks: runs the PTA
// experiment for each (rule variant, delay window) and prints one section
// per figure with the same rows/series the paper reports.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "strip/market/app_functions.h"
#include "strip/market/pta_runner.h"
#include "strip/obs/json.h"

namespace strip::bench {

/// Best-effort git revision of the checkout the benchmark ran from, read
/// from .git at run time (so a stale build directory cannot bake in an old
/// rev). Searches upward from the working directory; "unknown" if no
/// repository is found.
inline std::string RepoRev() {
  for (const char* dir : {".", "..", "../..", "../../.."}) {
    std::string base = std::string(dir) + "/.git/";
    std::ifstream head(base + "HEAD");
    if (!head) continue;
    std::string line;
    std::getline(head, line);
    if (line.rfind("ref: ", 0) == 0) {
      std::string ref = line.substr(5);
      std::ifstream ref_file(base + ref);
      std::string sha;
      if (ref_file && std::getline(ref_file, sha) && !sha.empty()) {
        return sha;
      }
      return ref;  // packed refs: at least name the branch
    }
    if (!line.empty()) return line;  // detached HEAD: the sha itself
  }
  return "unknown";
}

/// The canonical BENCH_*.json schema every bench binary emits:
///
///   {"name": "<benchmark>", "repo_rev": "<sha>",
///    "config": {...flags / workload parameters...},
///    "metrics": {...measurements, incl. registry snapshots...}}
///
/// Fill the two sections through the JsonWriter handed to the callbacks;
/// tools/validate_bench_json.py checks the result in CI.
class BenchReport {
 public:
  explicit BenchReport(const std::string& name) {
    w_.BeginObject();
    w_.Key("name").String(name);
    w_.Key("repo_rev").String(RepoRev());
  }

  template <typename Fn>
  void Config(Fn fill) {
    w_.Key("config").BeginObject();
    fill(w_);
    w_.EndObject();
  }

  template <typename Fn>
  void Metrics(Fn fill) {
    w_.Key("metrics").BeginObject();
    fill(w_);
    w_.EndObject();
  }

  /// Closes the report and writes it; both sections must have been filled.
  bool WriteFile(const std::string& path) {
    w_.EndObject();
    std::ofstream out(path);
    if (!out) return false;
    out << w_.str() << "\n";
    return out.good();
  }

 private:
  JsonWriter w_;
};

struct SweepOptions {
  /// Fraction of the paper's trace volume (1.0 = 30 min / ~60k updates).
  double scale = 0.05;
  /// Delay windows on the x-axis (the paper sweeps 0.5 - 3 s).
  std::vector<double> delays = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
  uint64_t seed = 42;
};

inline SweepOptions ParseArgs(int argc, char** argv) {
  SweepOptions o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      o.scale = 1.0;
    } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      o.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      o.seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--full | --scale=F] [--seed=N]\n", argv[0]);
      std::exit(2);
    }
  }
  return o;
}

/// One measured series cell.
struct Cell {
  PtaRunResult r;
};

struct Sweep {
  std::vector<std::string> variant_names;  // columns
  std::vector<double> delays;              // rows
  // results[variant][delay_index]; non-delay variants replicate one run.
  std::vector<std::vector<PtaRunResult>> results;
  PtaRunResult baseline;  // no rule at all: pure update cost
};

/// Maintenance CPU fraction: everything the rule adds on top of the
/// update-only baseline (condition evaluation, task management, and the
/// recompute transactions), over the trading window — the quantity of
/// Figures 9 and 12.
inline double MaintenanceFraction(const PtaRunResult& r,
                                  const PtaRunResult& baseline) {
  double extra = r.total_cpu_seconds - baseline.total_cpu_seconds;
  if (extra < 0) extra = 0;
  return extra / r.duration_seconds;
}

inline void PrintHeader(const Sweep& s, const char* title) {
  std::printf("\n# %s\n", title);
  std::printf("%-8s", "delay_s");
  for (const auto& name : s.variant_names) {
    std::printf("  %-18s", name.c_str());
  }
  std::printf("\n");
}

template <typename Fn>
void PrintSeries(const Sweep& s, const char* title, Fn metric) {
  PrintHeader(s, title);
  for (size_t d = 0; d < s.delays.size(); ++d) {
    std::printf("%-8.2f", s.delays[d]);
    for (size_t v = 0; v < s.variant_names.size(); ++v) {
      std::printf("  %-18.6g", metric(s.results[v][d]));
    }
    std::printf("\n");
  }
}

}  // namespace strip::bench

#endif  // STRIP_BENCH_PTA_BENCH_COMMON_H_
