// Multi-core scale-up of the PTA workload on the ThreadedExecutor (§6.2's
// process pool): the same quote burst + unique-on-comp rule (Figure 7) run
// at several worker-pool sizes, reporting recompute-firing throughput,
// firing-latency percentiles, lock contention, and wait-die restarts.
//
// Each firing ends with a blocking "order submission" stall modeling the
// exchange round-trip (the paper's program trades act on the outside
// world). Extra workers overlap those stalls, so throughput scales with
// the pool size even on a single CPU — which is exactly the concurrency
// the paper's process pool exists to exploit: rule transactions that
// block (on locks or the outside world) must not stall the whole system.
//
// Usage: bench_threaded_pta [--workers 1,2,4,8] [--scale F] [--stall US]
//                           [--delay S] [--seed N] [--out FILE]
//
// Emits BENCH_threaded_pta.json with one entry per worker count plus the
// 4-vs-1 worker speedup (the headline number for EXPERIMENTS.md).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "strip/market/pta_runner.h"

namespace strip {
namespace {

std::vector<int> ParseWorkerList(const std::string& s) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

void PrintResult(const ThreadedPtaResult& r) {
  std::printf(
      "%7d %9llu %9llu %10.1f %12.1f %12.1f %8llu %8llu %10.3f\n",
      r.num_workers, static_cast<unsigned long long>(r.num_updates),
      static_cast<unsigned long long>(r.num_firings), r.firings_per_second,
      r.p50_firing_latency_micros, r.p99_firing_latency_micros,
      static_cast<unsigned long long>(r.lock_wait_die_aborts),
      static_cast<unsigned long long>(r.update_restarts), r.wall_seconds);
}

}  // namespace
}  // namespace strip

int main(int argc, char** argv) {
  using namespace strip;

  std::vector<int> workers = {1, 2, 4, 8};
  ThreadedPtaOptions base;
  std::string out_path = "BENCH_threaded_pta.json";
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--workers") == 0) {
      workers = ParseWorkerList(next());
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      base.scale = std::atof(next());
    } else if (std::strcmp(argv[i], "--stall") == 0) {
      base.order_latency_micros = std::atoll(next());
    } else if (std::strcmp(argv[i], "--delay") == 0) {
      base.delay_seconds = std::atof(next());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      base.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::printf(
      "%7s %9s %9s %10s %12s %12s %8s %8s %10s\n", "workers", "updates",
      "firings", "firing/s", "p50_us", "p99_us", "wd_kill", "restarts",
      "wall_s");
  std::vector<ThreadedPtaResult> results;
  for (int w : workers) {
    ThreadedPtaOptions opts = base;
    opts.num_workers = w;
    auto r = RunThreadedPta(opts);
    if (!r.ok()) {
      std::fprintf(stderr, "workers=%d: %s\n", w,
                   r.status().ToString().c_str());
      return 1;
    }
    PrintResult(*r);
    results.push_back(*r);
  }

  double speedup_4v1 = 0;
  {
    const ThreadedPtaResult* w1 = nullptr;
    const ThreadedPtaResult* w4 = nullptr;
    for (const auto& r : results) {
      if (r.num_workers == 1) w1 = &r;
      if (r.num_workers == 4) w4 = &r;
    }
    if (w1 != nullptr && w4 != nullptr && w1->firings_per_second > 0) {
      speedup_4v1 = w4->firings_per_second / w1->firings_per_second;
      std::printf("\n4-worker vs 1-worker firing throughput: %.2fx\n",
                  speedup_4v1);
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"threaded_pta\",\n");
  std::fprintf(f, "  \"scale\": %.4f,\n", base.scale);
  std::fprintf(f, "  \"order_latency_micros\": %lld,\n",
               static_cast<long long>(base.order_latency_micros));
  std::fprintf(f, "  \"delay_seconds\": %.3f,\n", base.delay_seconds);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(base.seed));
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ThreadedPtaResult& r = results[i];
    std::fprintf(
        f,
        "    {\"workers\": %d, \"updates\": %llu, \"firings\": %llu, "
        "\"firings_per_second\": %.2f, \"p50_firing_latency_us\": %.1f, "
        "\"p99_firing_latency_us\": %.1f, \"lock_acquires\": %llu, "
        "\"lock_waits\": %llu, \"lock_wait_die_aborts\": %llu, "
        "\"lock_wait_micros\": %llu, \"update_restarts\": %llu, "
        "\"firings_merged\": %llu, \"failed_tasks\": %llu, "
        "\"wall_seconds\": %.3f}%s\n",
        r.num_workers, static_cast<unsigned long long>(r.num_updates),
        static_cast<unsigned long long>(r.num_firings),
        r.firings_per_second, r.p50_firing_latency_micros,
        r.p99_firing_latency_micros,
        static_cast<unsigned long long>(r.lock_acquires),
        static_cast<unsigned long long>(r.lock_waits),
        static_cast<unsigned long long>(r.lock_wait_die_aborts),
        static_cast<unsigned long long>(r.lock_wait_micros),
        static_cast<unsigned long long>(r.update_restarts),
        static_cast<unsigned long long>(r.firings_merged),
        static_cast<unsigned long long>(r.failed_tasks), r.wall_seconds,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_4_workers_vs_1\": %.3f,\n", speedup_4v1);
  std::fprintf(f, "  \"meets_2p5x_target\": %s\n",
               speedup_4v1 >= 2.5 ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
