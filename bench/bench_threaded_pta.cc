// Multi-core scale-up of the PTA workload on the ThreadedExecutor (§6.2's
// process pool): the same quote burst + unique-on-comp rule (Figure 7) run
// at several worker-pool sizes, reporting recompute-firing throughput,
// firing-latency percentiles, lock contention, and wait-die restarts.
//
// Each firing ends with a blocking "order submission" stall modeling the
// exchange round-trip (the paper's program trades act on the outside
// world). Extra workers overlap those stalls, so throughput scales with
// the pool size even on a single CPU — which is exactly the concurrency
// the paper's process pool exists to exploit: rule transactions that
// block (on locks or the outside world) must not stall the whole system.
//
// Usage: bench_threaded_pta [--workers 1,2,4,8] [--scale F] [--stall US]
//                           [--delay S] [--seed N] [--out FILE]
//                           [--no-metrics]
//
// Emits BENCH_threaded_pta.json (canonical BenchReport schema) with one
// entry per worker count, the 4-vs-1 worker speedup (the headline number
// for EXPERIMENTS.md), and each run's metrics-registry snapshot.
// --no-metrics disables the observability layer for the overhead A/B.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pta_bench_common.h"
#include "strip/market/pta_runner.h"

namespace strip {
namespace {

std::vector<int> ParseWorkerList(const std::string& s) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

void PrintResult(const ThreadedPtaResult& r) {
  std::printf(
      "%7d %9llu %9llu %10.1f %12.1f %12.1f %8llu %8llu %10.3f\n",
      r.num_workers, static_cast<unsigned long long>(r.num_updates),
      static_cast<unsigned long long>(r.num_firings), r.firings_per_second,
      r.p50_firing_latency_micros, r.p99_firing_latency_micros,
      static_cast<unsigned long long>(r.lock_wait_die_aborts),
      static_cast<unsigned long long>(r.update_restarts), r.wall_seconds);
}

}  // namespace
}  // namespace strip

int main(int argc, char** argv) {
  using namespace strip;

  std::vector<int> workers = {1, 2, 4, 8};
  ThreadedPtaOptions base;
  std::string out_path = "BENCH_threaded_pta.json";
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--workers") == 0) {
      workers = ParseWorkerList(next());
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      base.scale = std::atof(next());
    } else if (std::strcmp(argv[i], "--stall") == 0) {
      base.order_latency_micros = std::atoll(next());
    } else if (std::strcmp(argv[i], "--delay") == 0) {
      base.delay_seconds = std::atof(next());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      base.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next();
    } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
      base.enable_metrics = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::printf(
      "%7s %9s %9s %10s %12s %12s %8s %8s %10s\n", "workers", "updates",
      "firings", "firing/s", "p50_us", "p99_us", "wd_kill", "restarts",
      "wall_s");
  std::vector<ThreadedPtaResult> results;
  for (int w : workers) {
    ThreadedPtaOptions opts = base;
    opts.num_workers = w;
    auto r = RunThreadedPta(opts);
    if (!r.ok()) {
      std::fprintf(stderr, "workers=%d: %s\n", w,
                   r.status().ToString().c_str());
      return 1;
    }
    PrintResult(*r);
    results.push_back(*r);
  }

  double speedup_4v1 = 0;
  {
    const ThreadedPtaResult* w1 = nullptr;
    const ThreadedPtaResult* w4 = nullptr;
    for (const auto& r : results) {
      if (r.num_workers == 1) w1 = &r;
      if (r.num_workers == 4) w4 = &r;
    }
    if (w1 != nullptr && w4 != nullptr && w1->firings_per_second > 0) {
      speedup_4v1 = w4->firings_per_second / w1->firings_per_second;
      std::printf("\n4-worker vs 1-worker firing throughput: %.2fx\n",
                  speedup_4v1);
    }
  }

  bench::BenchReport report("threaded_pta");
  report.Config([&](JsonWriter& w) {
    w.Key("scale").Double(base.scale);
    w.Key("order_latency_micros").Int(base.order_latency_micros);
    w.Key("delay_seconds").Double(base.delay_seconds);
    w.Key("seed").Uint(base.seed);
    w.Key("metrics_enabled").Bool(base.enable_metrics);
  });
  report.Metrics([&](JsonWriter& w) {
    w.Key("runs").BeginArray();
    for (const ThreadedPtaResult& r : results) {
      w.BeginObject();
      w.Key("workers").Int(r.num_workers);
      w.Key("updates").Uint(r.num_updates);
      w.Key("firings").Uint(r.num_firings);
      w.Key("firings_per_second").Double(r.firings_per_second);
      w.Key("p50_firing_latency_us").Double(r.p50_firing_latency_micros);
      w.Key("p99_firing_latency_us").Double(r.p99_firing_latency_micros);
      w.Key("lock_acquires").Uint(r.lock_acquires);
      w.Key("lock_waits").Uint(r.lock_waits);
      w.Key("lock_wait_die_aborts").Uint(r.lock_wait_die_aborts);
      w.Key("lock_wait_micros").Uint(r.lock_wait_micros);
      w.Key("update_restarts").Uint(r.update_restarts);
      w.Key("firings_merged").Uint(r.firings_merged);
      w.Key("failed_tasks").Uint(r.failed_tasks);
      w.Key("wall_seconds").Double(r.wall_seconds);
      w.Key("registry").Raw(r.metrics_json);
      w.EndObject();
    }
    w.EndArray();
    w.Key("speedup_4_workers_vs_1").Double(speedup_4v1);
    w.Key("meets_2p5x_target").Bool(speedup_4v1 >= 2.5);
  });
  if (!report.WriteFile(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
