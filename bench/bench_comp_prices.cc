// Figures 9, 10, 11: maintaining the materialized view comp_prices (§5.1).
//
//   Figure 9  - CPU fraction spent maintaining comp_prices vs delay window
//   Figure 10 - number of recomputation transactions N_r vs delay window
//   Figure 11 - average recompute transaction length vs delay window
//
// Series: non-unique (do_comps1, delay-independent horizontal line),
// unique (do_comps2), unique on symbol, unique on comp (do_comps3).
//
// Default runs a scaled trace (--scale, default 0.05 of the paper's 30-min
// / 60k-update volume) against the full-size table population; --full
// replays the paper-scale trace. Absolute CPU fractions are far below the
// paper's 36% (1997 HP-735 vs a modern CPU); the paper's *shape* — who
// wins, the ~10x N_r blowup of unique-on-comp, the orders-of-magnitude
// spread in transaction length — is what EXPERIMENTS.md tracks.

#include "pta_bench_common.h"

namespace strip::bench {
namespace {

int Run(const SweepOptions& opts) {
  TraceOptions trace_opts = TraceOptions::Scaled(opts.scale);
  trace_opts.seed = opts.seed;
  std::printf("generating trace: %d stocks, %.0f s, ~%d updates ...\n",
              trace_opts.num_stocks, trace_opts.duration_seconds,
              trace_opts.target_updates);
  MarketTrace trace = MarketTrace::Generate(trace_opts);
  PtaConfig cfg = PtaConfig::PaperScale();

  auto run_one = [&](const std::string& rule_sql) -> PtaRunResult {
    auto r = RunPtaExperiment(trace, cfg, rule_sql);
    if (!r.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    return *r;
  };

  Sweep sweep;
  sweep.delays = opts.delays;
  sweep.variant_names = {"non-unique", "unique", "unique_on_symbol",
                         "unique_on_comp"};

  std::printf("running update-only baseline ...\n");
  sweep.baseline = run_one("");

  std::printf("running non-unique (do_comps1) ...\n");
  PtaRunResult nonunique = run_one(CompRuleSql(CompRuleVariant::kNonUnique, 0));
  sweep.results.push_back(
      std::vector<PtaRunResult>(sweep.delays.size(), nonunique));

  const CompRuleVariant kVariants[] = {CompRuleVariant::kUnique,
                                       CompRuleVariant::kUniqueOnSymbol,
                                       CompRuleVariant::kUniqueOnComp};
  for (CompRuleVariant v : kVariants) {
    std::vector<PtaRunResult> row;
    for (double delay : sweep.delays) {
      std::printf("running %s, delay %.2f s ...\n", CompRuleVariantName(v),
                  delay);
      row.push_back(run_one(CompRuleSql(v, delay)));
    }
    sweep.results.push_back(std::move(row));
  }

  std::printf("\nbaseline (no rule): %zu updates, %.3f s update CPU\n",
              static_cast<size_t>(sweep.baseline.num_updates),
              sweep.baseline.total_cpu_seconds);

  PrintSeries(sweep,
              "Figure 9: CPU fraction maintaining comp_prices vs delay "
              "window (non-unique is the paper's horizontal line)",
              [&](const PtaRunResult& r) {
                return MaintenanceFraction(r, sweep.baseline);
              });
  PrintSeries(sweep, "Figure 10: number of recomputations N_r vs delay window",
              [](const PtaRunResult& r) {
                return static_cast<double>(r.num_recomputes);
              });
  PrintSeries(sweep,
              "Figure 11: average recompute transaction length (us) vs "
              "delay window",
              [](const PtaRunResult& r) { return r.avg_recompute_micros; });
  PrintSeries(sweep,
              "Schedulability (supplementary, 5.1 discussion): mean update "
              "transaction response time (us)",
              [](const PtaRunResult& r) {
                return r.avg_update_response_micros;
              });
  return 0;
}

}  // namespace
}  // namespace strip::bench

int main(int argc, char** argv) {
  return strip::bench::Run(strip::bench::ParseArgs(argc, argv));
}
