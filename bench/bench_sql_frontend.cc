// SQL-front-end cost of the single-tuple update transaction (the workload
// unit of §4.3) and its SELECT counterpart, across the statement-execution
// modes of one binary:
//
//   uncached   textual SQL with inline literals, plan cache off — the full
//              parse + resolve + plan cost on every execution
//   cached     textual SQL routed through the LRU plan cache (a small
//              rotating statement set, so executions mostly hit)
//   prepared   one PreparedStatement handle, '?' params rebound per
//              execution — frozen input set, index probe, slot-compiled
//              programs
//   prepared_interpreted  the same handle API with compiled expressions
//              (and fast paths) disabled — isolates what compilation buys
//              over per-execution interpretation
//
// Emits BENCH_sql_frontend.json with per-mode timings and the
// prepared-vs-uncached speedup (the headline number for EXPERIMENTS.md
// "Table 1 revisited").

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pta_bench_common.h"
#include "strip/engine/database.h"

namespace strip {
namespace {

constexpr int kRows = 10000;
constexpr int kWarmup = 2000;
constexpr int kIters = 20000;

std::unique_ptr<Database> MakeDb(bool plan_cache, bool compiled) {
  Database::Options opts;
  opts.mode = ExecutorMode::kSimulated;
  opts.enable_plan_cache = plan_cache;
  opts.enable_compiled_exprs = compiled;
  auto db = std::make_unique<Database>(opts);
  Status st = db->ExecuteScript(
      "create table t (k string, v double); create index on t (k)");
  if (!st.ok()) std::abort();
  Table* t = db->catalog().FindTable("t");
  for (int i = 0; i < kRows; ++i) {
    auto r = t->Insert(MakeRecord(
        {Value::Str("k" + std::to_string(i)), Value::Double(i)}));
    if (!r.ok()) std::abort();
  }
  return db;
}

struct ModeResult {
  std::string name;
  int iters = 0;
  double us_per_op = 0;
};

/// Runs `op(i)` kWarmup untimed + kIters timed times; aborts on error so a
/// silently failing mode cannot report a fantasy number.
ModeResult TimeMode(const std::string& name,
                    const std::function<Status(int)>& op) {
  for (int i = 0; i < kWarmup; ++i) {
    Status st = op(i);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), st.ToString().c_str());
      std::abort();
    }
  }
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    Status st = op(i);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), st.ToString().c_str());
      std::abort();
    }
  }
  auto end = std::chrono::steady_clock::now();
  ModeResult r;
  r.name = name;
  r.iters = kIters;
  r.us_per_op =
      std::chrono::duration<double, std::micro>(end - start).count() /
      kIters;
  return r;
}

std::string UpdateSql(int i) {
  int key = i % kRows;
  return "update t set v = " + std::to_string((i % 97) + 0.5) +
         " where k = 'k" + std::to_string(key) + "'";
}

Status CheckOneRow(const Result<ResultSet>& rs) {
  if (!rs.ok()) return rs.status();
  if (rs->num_rows() != 1) return Status::Internal("expected 1 row");
  return Status::OK();
}

}  // namespace
}  // namespace strip

int main() {
  using namespace strip;
  std::vector<ModeResult> results;

  // --- update transaction, uncached textual SQL -------------------------
  {
    auto db = MakeDb(/*plan_cache=*/false, /*compiled=*/true);
    results.push_back(TimeMode("update_uncached", [&](int i) {
      return db->Execute(UpdateSql(i)).status();
    }));
  }

  // --- update transaction, textual SQL through the plan cache -----------
  {
    auto db = MakeDb(/*plan_cache=*/true, /*compiled=*/true);
    // A rotating set of 64 distinct statements: realistic hot-statement
    // reuse, far below cache capacity.
    std::vector<std::string> stmts;
    for (int i = 0; i < 64; ++i) stmts.push_back(UpdateSql(i));
    results.push_back(TimeMode("update_cached", [&](int i) {
      return db->Execute(stmts[static_cast<size_t>(i % 64)]).status();
    }));
  }

  // --- update transaction, prepared handle + params ----------------------
  {
    auto db = MakeDb(/*plan_cache=*/true, /*compiled=*/true);
    auto ps = db->Prepare("update t set v = ? where k = ?");
    if (!ps.ok()) std::abort();
    results.push_back(TimeMode("update_prepared", [&](int i) {
      return (*ps)
          ->Execute({Value::Double((i % 97) + 0.5),
                     Value::Str("k" + std::to_string(i % kRows))})
          .status();
    }));
  }

  // --- update transaction, prepared handle, interpreter forced ----------
  {
    auto db = MakeDb(/*plan_cache=*/true, /*compiled=*/false);
    auto ps = db->Prepare("update t set v = ? where k = ?");
    if (!ps.ok()) std::abort();
    results.push_back(TimeMode("update_prepared_interpreted", [&](int i) {
      return (*ps)
          ->Execute({Value::Double((i % 97) + 0.5),
                     Value::Str("k" + std::to_string(i % kRows))})
          .status();
    }));
  }

  // --- single-row SELECT, uncached vs prepared ---------------------------
  {
    auto db = MakeDb(/*plan_cache=*/false, /*compiled=*/true);
    results.push_back(TimeMode("select_uncached", [&](int i) {
      return CheckOneRow(db->Execute(
          "select v from t where k = 'k" + std::to_string(i % kRows) +
          "'"));
    }));
  }
  {
    auto db = MakeDb(/*plan_cache=*/true, /*compiled=*/true);
    auto ps = db->Prepare("select v from t where k = ?");
    if (!ps.ok()) std::abort();
    results.push_back(TimeMode("select_prepared", [&](int i) {
      return CheckOneRow((*ps)->Execute(
          {Value::Str("k" + std::to_string(i % kRows))}));
    }));
  }

  std::printf("%-28s %10s %12s\n", "mode", "iters", "us/op");
  for (const ModeResult& r : results) {
    std::printf("%-28s %10d %12.3f\n", r.name.c_str(), r.iters,
                r.us_per_op);
  }

  auto find = [&](const char* name) -> const ModeResult& {
    for (const ModeResult& r : results) {
      if (r.name == name) return r;
    }
    std::abort();
  };
  double update_speedup = find("update_uncached").us_per_op /
                          find("update_prepared").us_per_op;
  double select_speedup = find("select_uncached").us_per_op /
                          find("select_prepared").us_per_op;
  std::printf("\nprepared-vs-uncached speedup: update %.2fx, select %.2fx\n",
              update_speedup, select_speedup);

  bench::BenchReport report("sql_frontend");
  report.Config([&](JsonWriter& w) {
    w.Key("rows").Int(kRows);
    w.Key("warmup").Int(kWarmup);
    w.Key("iters").Int(kIters);
  });
  report.Metrics([&](JsonWriter& w) {
    w.Key("modes").BeginArray();
    for (const ModeResult& r : results) {
      w.BeginObject();
      w.Key("name").String(r.name);
      w.Key("iters").Int(r.iters);
      w.Key("us_per_op").Double(r.us_per_op);
      w.EndObject();
    }
    w.EndArray();
    w.Key("update_prepared_speedup_vs_uncached").Double(update_speedup);
    w.Key("select_prepared_speedup_vs_uncached").Double(select_speedup);
    w.Key("meets_2x_target").Bool(update_speedup >= 2.0);
  });
  if (!report.WriteFile("BENCH_sql_frontend.json")) {
    std::fprintf(stderr, "cannot write BENCH_sql_frontend.json\n");
    return 1;
  }
  return 0;
}
