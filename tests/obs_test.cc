// Tests for the observability layer (src/strip/obs/): histogram bucket
// semantics, concurrent instrument updates (the TSan CI job runs these),
// trace-ring wraparound and Chrome export, the JSON writer, leveled
// logging, and end-to-end staleness-probe correctness on the deterministic
// SimulatedExecutor.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "strip/common/logging.h"
#include "strip/engine/database.h"
#include "strip/obs/flight_recorder.h"
#include "strip/obs/json.h"
#include "strip/obs/metrics.h"
#include "strip/obs/trace_ring.h"
#include "strip/obs/watchdog.h"
#include "tests/test_util.h"

namespace strip {
namespace {

// --- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, NestedStructuresAndEscaping) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a\"b\\c\n");
  w.Key("arr").BeginArray();
  w.Int(-1).Uint(2).Double(1.5).Bool(true).Null();
  w.EndArray();
  w.Key("o").BeginObject().Key("k").Int(7).EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"arr\":[-1,2,1.5,true,null],"
            "\"o\":{\"k\":7}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

// --- Histogram -------------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges) {
  Histogram h({10, 100});
  h.Observe(10);   // on the edge -> bucket 0
  h.Observe(11);   // just past   -> bucket 1
  h.Observe(100);  // on the edge -> bucket 1
  h.Observe(101);  // past the last bound -> overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // implicit +inf bucket
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 101);
  EXPECT_EQ(h.sum(), 10 + 11 + 100 + 101);
}

TEST(Histogram, BoundsAreSortedAndDeduped) {
  Histogram h({100, 10, 10, 50});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bounds()[0], 10);
  EXPECT_EQ(h.bounds()[1], 50);
  EXPECT_EQ(h.bounds()[2], 100);
}

TEST(Histogram, PercentileInterpolatesAndClamps) {
  Histogram h({10, 100, 1000});
  EXPECT_EQ(h.Percentile(0.5), 0);  // empty
  for (int i = 0; i < 100; ++i) h.Observe(50);
  // All mass in one bucket: every percentile is clamped to [min, max].
  EXPECT_EQ(h.Percentile(0.0), 50);
  EXPECT_EQ(h.Percentile(0.5), 50);
  EXPECT_EQ(h.Percentile(1.0), 50);
}

TEST(Histogram, PercentileSpreadAcrossBuckets) {
  Histogram h({10, 100});
  for (int i = 0; i < 90; ++i) h.Observe(5);    // bucket 0
  for (int i = 0; i < 10; ++i) h.Observe(90);   // bucket 1
  double p50 = h.Percentile(0.50);
  double p99 = h.Percentile(0.99);
  EXPECT_GE(p50, 5);
  EXPECT_LE(p50, 10);
  EXPECT_GT(p99, 10);
  EXPECT_LE(p99, 90);
}

TEST(Histogram, ConcurrentObservesLoseNothing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  Histogram h(Histogram::DefaultLatencyBoundsMicros());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(i % 1000);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 999);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= h.bounds().size(); ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
}

// --- Counters / registry ---------------------------------------------------

TEST(MetricsRegistry, ConcurrentCounterIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Half the threads resolve the instrument concurrently with the
    // increments (registration must be thread-safe too).
    threads.emplace_back([&reg] {
      Counter* c = reg.counter("shared");
      for (int i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared")->Get(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(MetricsRegistry, InstrumentPointersAreStable) {
  MetricsRegistry reg;
  Counter* c = reg.counter("a");
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(reg.counter("a"), c);
}

TEST(MetricsRegistry, CallbackGaugesEvaluateAtSnapshotTime) {
  MetricsRegistry reg;
  std::atomic<int> source{0};
  reg.RegisterCallback("pull", [&source] {
    return static_cast<double>(source.load());
  });
  source = 41;
  EXPECT_EQ(reg.GaugeValues().at("pull"), 41.0);
  source = 42;
  EXPECT_EQ(reg.GaugeValues().at("pull"), 42.0);
}

TEST(MetricsRegistry, SnapshotJsonIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("c")->Add(3);
  reg.gauge("g")->Set(1.5);
  reg.histogram("h")->Observe(42);
  std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"counters\":{\"c\":3}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos) << json;
}

// --- TraceRing -------------------------------------------------------------

TEST(TraceRing, WraparoundKeepsTheMostRecentEvents) {
  TraceRing ring(4);
  for (uint64_t id = 1; id <= 7; ++id) {
    ring.Record(TraceEventKind::kSubmit, id, static_cast<Timestamp>(id));
  }
  EXPECT_EQ(ring.total_recorded(), 7u);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: ids 4, 5, 6, 7.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 4);
  }
}

TEST(TraceRing, ZeroCapacityDisablesRecording) {
  TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.Record(TraceEventKind::kSubmit, 1, 0);
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_NE(ring.ToChromeJson().find("\"traceEvents\":[]"),
            std::string::npos);
}

TEST(TraceRing, SnapshotAtExactCapacityBoundaryExportsEachEventOnce) {
  // Regression guard for the wraparound boundary: with next_ == capacity
  // the ring is exactly full, and the snapshot must contain each of the
  // `capacity` events exactly once — not drop slot 0 or export it twice.
  TraceRing ring(4);
  for (uint64_t id = 1; id <= 4; ++id) {
    ring.Record(TraceEventKind::kSubmit, id, static_cast<Timestamp>(id));
  }
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 1);
  }
  // One past the boundary: the oldest rotates out, order stays intact.
  ring.Record(TraceEventKind::kSubmit, 5, 5);
  events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 2);
  }
}

TEST(TraceRing, WallTimestampsNeverInvertRingOrder) {
  // Concurrent recorders: the ring's slot order and the wall_ts values
  // must agree. Before wall_ts was stamped under the ring lock, a racing
  // pair could publish in the opposite order they read the clock, making
  // exported traces run backwards in time.
  TraceRing ring(128);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;  // wraps the ring many times
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Record(TraceEventKind::kSubmit,
                    static_cast<uint64_t>(t * kPerThread + i), 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 128u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].wall_ts, events[i].wall_ts)
        << "ring order and wall-clock order disagree at slot " << i;
  }
}

TEST(TraceRing, NamesAreTruncatedNotOverflowed) {
  TraceRing ring(2);
  std::string long_name(100, 'x');
  ring.Record(TraceEventKind::kStart, 1, 0, long_name.c_str());
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), std::string(22, 'x'));
}

TEST(TraceRing, ChromeJsonPairsStartFinishIntoSlices) {
  TraceRing ring(16);
  ring.Record(TraceEventKind::kSubmit, 7, 5, "work");
  ring.Record(TraceEventKind::kStart, 7, 10, "work");
  ring.Record(TraceEventKind::kFinish, 7, 50, "work");
  std::string json = ring.ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":40"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"submit:work\""), std::string::npos)
      << json;
  // The paired start/finish must not also appear as instants.
  EXPECT_EQ(json.find("\"name\":\"start:work\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"name\":\"finish:work\""), std::string::npos)
      << json;
}

TEST(TraceRing, ConcurrentRecordsAllLand) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  TraceRing ring(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.Record(TraceEventKind::kReady,
                    static_cast<uint64_t>(t * kPerThread + i), i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.total_recorded(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(ring.Snapshot().size(), 64u);
}

TEST(TraceRing, DroppedEventsAreCountedWhenWritersOutrunTheRing) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 7; ++i) {
    ring.Record(TraceEventKind::kSubmit, i, static_cast<Timestamp>(i));
  }
  EXPECT_EQ(ring.total_recorded(), 7u);
  EXPECT_EQ(ring.total_dropped(), 3u);  // 7 writes into 4 slots
  EXPECT_EQ(ring.Snapshot().size(), 4u);

  // A database exports the same counter as the trace.dropped_events gauge.
  Database::Options opts;
  opts.mode = ExecutorMode::kSimulated;
  opts.advance_clock_by_cost = false;
  Database db(opts);
  auto gauges = db.metrics().GaugeValues();
  ASSERT_TRUE(gauges.count("trace.dropped_events"));
  EXPECT_EQ(gauges.at("trace.dropped_events"), 0.0);
}

TEST(MetricsRegistry, HistogramsPrefixReturnsOrderedMatchingRange) {
  MetricsRegistry reg;
  reg.histogram("rules.exec_us.b")->Observe(1);
  reg.histogram("rules.exec_us.a")->Observe(1);
  reg.histogram("rules.queue_wait_us.a")->Observe(1);
  reg.histogram("task.run_us")->Observe(1);

  auto all = reg.Histograms("");
  EXPECT_EQ(all.size(), 4u);
  auto exec = reg.Histograms("rules.exec_us.");
  ASSERT_EQ(exec.size(), 2u);
  EXPECT_EQ(exec[0].first, "rules.exec_us.a");  // name-ordered
  EXPECT_EQ(exec[1].first, "rules.exec_us.b");
  EXPECT_TRUE(reg.Histograms("no.such.prefix").empty());
}

// --- Watchdog --------------------------------------------------------------

TEST(Watchdog, FirstEvaluateOnlyBaselinesExistingHistory) {
  MetricsRegistry reg;
  Histogram* q = reg.histogram("task.queue_wait_us");
  // History predating the watchdog: wildly over any SLO.
  for (int i = 0; i < 100; ++i) q->Observe(500000);

  WatchdogSlo slo;
  slo.queue_wait_p99_us = 1000;
  Watchdog dog(&reg, slo);
  WatchdogVerdict v = dog.Evaluate(10);
  EXPECT_EQ(v.state, WatchdogState::kOk);
  EXPECT_EQ(v.consecutive_breaches, 0);

  // A histogram registered AFTER construction is baselined on first
  // sighting too — its backlog is not judged either.
  Histogram* late = reg.histogram("rules.staleness_us.late");
  for (int i = 0; i < 100; ++i) late->Observe(900000000);
  WatchdogSlo slo2;
  slo2.staleness_p99_us = 1000;
  Watchdog dog2(&reg, slo2);
  EXPECT_EQ(dog2.Evaluate(10).state, WatchdogState::kOk);  // baseline all
  Histogram* later = reg.histogram("rules.staleness_us.later");
  for (int i = 0; i < 100; ++i) later->Observe(900000000);
  EXPECT_EQ(dog2.Evaluate(20).state, WatchdogState::kOk);  // first sighting
  for (int i = 0; i < 100; ++i) later->Observe(900000000);
  EXPECT_NE(dog2.Evaluate(30).state, WatchdogState::kOk);  // now judged
}

TEST(Watchdog, TripsAfterConsecutiveBreachesAndRecoversOnCleanAir) {
  MetricsRegistry reg;
  Histogram* q = reg.histogram("task.queue_wait_us");
  WatchdogSlo slo;
  slo.queue_wait_p99_us = 1000;  // trip_intervals = clear_intervals = 2
  Watchdog dog(&reg, slo);
  int shed_calls = 0;
  dog.set_on_shed([&](const WatchdogVerdict& v) {
    ++shed_calls;
    EXPECT_EQ(v.state, WatchdogState::kShed);
    EXPECT_EQ(v.worst_signal, "queue_wait_p99_us");
  });

  dog.Evaluate(0);  // baseline
  auto breach = [&] {
    for (int i = 0; i < 50; ++i) q->Observe(50000);
  };
  breach();
  WatchdogVerdict v1 = dog.Evaluate(10);
  EXPECT_EQ(v1.state, WatchdogState::kWarn);  // breach 1 of 2: not yet shed
  EXPECT_EQ(v1.consecutive_breaches, 1);
  ASSERT_EQ(v1.signals.size(), 1u);
  EXPECT_TRUE(v1.signals[0].breached);
  EXPECT_EQ(v1.signals[0].samples, 50u);

  breach();
  WatchdogVerdict v2 = dog.Evaluate(20);
  EXPECT_EQ(v2.state, WatchdogState::kShed);
  EXPECT_EQ(shed_calls, 1);

  breach();
  EXPECT_EQ(dog.Evaluate(30).state, WatchdogState::kShed);
  EXPECT_EQ(shed_calls, 1);  // only fired on the transition INTO shed

  // Two empty (clean) intervals clear the verdict: a drained system
  // recovers without any new observations.
  WatchdogVerdict v4 = dog.Evaluate(40);
  EXPECT_EQ(v4.state, WatchdogState::kShed);  // clean 1 of 2
  EXPECT_EQ(v4.consecutive_clean, 1);
  WatchdogVerdict v5 = dog.Evaluate(50);
  EXPECT_EQ(v5.state, WatchdogState::kOk);
  EXPECT_EQ(shed_calls, 1);

  // The verdict round-trips its essentials through ToJson.
  EXPECT_NE(v2.ToJson().find("\"state\":\"shed\""), std::string::npos);
  EXPECT_NE(v2.ToJson().find("\"worst_signal\":\"queue_wait_p99_us\""),
            std::string::npos);
}

TEST(Watchdog, WarnsWhenApproachingTheThreshold) {
  MetricsRegistry reg;
  Histogram* q = reg.histogram("task.queue_wait_us");
  WatchdogSlo slo;
  slo.queue_wait_p99_us = 1000;  // warn_fraction 0.75 -> warn above 750
  Watchdog dog(&reg, slo);
  dog.Evaluate(0);
  // 850 lands in the (300, 1000] bucket: interval p99 interpolates to
  // ~993 us — under the SLO but inside the warn band.
  for (int i = 0; i < 100; ++i) q->Observe(850);
  WatchdogVerdict v = dog.Evaluate(10);
  EXPECT_EQ(v.state, WatchdogState::kWarn);
  ASSERT_EQ(v.signals.size(), 1u);
  EXPECT_FALSE(v.signals[0].breached);
  EXPECT_EQ(v.consecutive_breaches, 0);
  EXPECT_EQ(v.worst_signal, "queue_wait_p99_us");
}

TEST(Watchdog, LockAbortRateJudgesIntervalDeltas) {
  MetricsRegistry reg;
  double acquires = 1000;  // pre-watchdog history
  double aborts = 900;     // (ancient 90% abort rate must not trip it)
  reg.RegisterCallback("locks.acquires", [&] { return acquires; });
  reg.RegisterCallback("locks.wait_die_aborts", [&] { return aborts; });
  WatchdogSlo slo;
  slo.max_lock_abort_rate = 0.10;
  slo.trip_intervals = 1;
  Watchdog dog(&reg, slo);
  dog.Evaluate(0);  // baseline swallows the history

  acquires += 100;  // clean interval: 2% aborts
  aborts += 2;
  WatchdogVerdict v1 = dog.Evaluate(10);
  EXPECT_EQ(v1.state, WatchdogState::kOk);
  ASSERT_EQ(v1.signals.size(), 1u);
  EXPECT_NEAR(v1.signals[0].observed, 0.02, 1e-9);

  acquires += 100;  // overload interval: 50% aborts
  aborts += 50;
  WatchdogVerdict v2 = dog.Evaluate(20);
  EXPECT_EQ(v2.state, WatchdogState::kShed);  // trip_intervals = 1
  EXPECT_EQ(v2.worst_signal, "lock_abort_rate");

  // No acquires at all -> no evidence -> clean.
  WatchdogVerdict v3 = dog.Evaluate(30);
  EXPECT_FALSE(v3.signals[0].breached);
}

// --- Flight recorder -------------------------------------------------------

TEST(FlightRecorder, DumpBundlesReasonVerdictTraceAndMetrics) {
  TraceRing ring(8);
  ring.Record(TraceEventKind::kSubmit, 1, 5, "work", 42);
  ring.Record(TraceEventKind::kStart, 1, 10, "work", 42);
  ring.Record(TraceEventKind::kFinish, 1, 30, "work", 42);
  MetricsRegistry reg;
  reg.counter("txn.commits")->Add(3);

  const std::string path = "flight_record_test_tmp.json";
  ASSERT_OK(WriteFlightRecord(path, "invariant (d): shadow mismatch",
                              "{\"state\":\"shed\"}", ring, reg));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();
  std::remove(path.c_str());

  EXPECT_NE(dump.find("\"reason\":\"invariant (d): shadow mismatch\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"verdict\":{\"state\":\"shed\"}"),
            std::string::npos);
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(dump.find("\"counters\""), std::string::npos);
  EXPECT_NE(dump.find("\"txn.commits\":3"), std::string::npos);

  // Without a verdict the member is null, keeping the schema stable.
  ASSERT_OK(WriteFlightRecord(path, "manual", "", ring, reg));
  std::ifstream in2(path);
  std::stringstream buf2;
  buf2 << in2.rdbuf();
  EXPECT_NE(buf2.str().find("\"verdict\":null"), std::string::npos);
  std::remove(path.c_str());
}

// --- Leveled logging -------------------------------------------------------

TEST(Logging, SinkReceivesFormattedMessageAndLevelFilters) {
  struct Captured {
    LogLevel level;
    std::string msg;
  };
  std::vector<Captured> captured;
  SetLogSink([&captured](LogLevel level, const char*, int,
                         const std::string& msg) {
    captured.push_back({level, msg});
  });
  SetMinLogLevel(LogLevel::kInfo);
  STRIP_LOG(INFO, "count=%d name=%s", 7, "x");
  STRIP_LOG(WARN, "warned");
  SetMinLogLevel(LogLevel::kError);
  STRIP_LOG(INFO, "filtered out");
  STRIP_LOG(ERROR, "kept");
  SetLogSink(nullptr);
  SetMinLogLevel(LogLevel::kInfo);

  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured[0].msg, "count=7 name=x");
  EXPECT_EQ(captured[1].level, LogLevel::kWarn);
  EXPECT_EQ(captured[2].level, LogLevel::kError);
  EXPECT_EQ(captured[2].msg, "kept");
}

// --- End-to-end staleness probe -------------------------------------------

// Deterministic scenario on the virtual clock (advance_clock_by_cost off,
// so time moves only when the test says so): two price changes arrive at
// t=0 and t=1s; a unique rule with a 2-second delay window batches both
// firings into one recompute task released at t=2s. The staleness of that
// commit is exactly 2s — the age of the OLDEST batched change — and the
// batching factor is exactly 2.
TEST(StalenessProbe, MeasuresAgeOfOldestBatchedChange) {
  Database::Options opts;
  opts.mode = ExecutorMode::kSimulated;
  opts.advance_clock_by_cost = false;
  Database db(opts);
  ASSERT_TRUE(db.ExecuteScript("create table s (sym string, price double);"
                               "insert into s values ('a', 1.0);")
                  .ok());
  ASSERT_TRUE(db.RegisterFunction("recompute", [](FunctionContext&) {
                  return Status::OK();
                }).ok());
  ASSERT_TRUE(db.Execute("create rule r on s when updated price then "
                         "execute recompute unique after 2.0 seconds")
                  .ok());

  Timestamp observed_staleness = -1;
  uint32_t observed_batched = 0;
  db.executor().set_task_observer([&](const TaskControlBlock& t) {
    if (t.function_name != "recompute") return;
    observed_staleness = t.commit_staleness_micros;
    observed_batched = t.batched_firings;
  });

  // t=0: first change. Fires the rule; task queued for release at t=2s.
  ASSERT_TRUE(db.Execute("update s set price = 2.0 where sym = 'a'").ok());
  // t=1s: second change merges into the queued task.
  db.simulated()->RunUntil(SecondsToMicros(1.0));
  ASSERT_TRUE(db.Execute("update s set price = 3.0 where sym = 'a'").ok());
  EXPECT_EQ(db.rules().stats().firings_merged.load(), 1u);
  // Drive past the release: the action commits at t=2s.
  db.simulated()->RunUntilQuiescent();
  db.executor().set_task_observer(nullptr);

  EXPECT_EQ(observed_staleness, SecondsToMicros(2.0));
  EXPECT_EQ(observed_batched, 2u);

  // The registry's per-rule staleness histogram and batching-factor
  // histogram saw exactly this one commit.
  const Histogram* stale =
      db.metrics().FindHistogram("rules.staleness_us.recompute");
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->count(), 1u);
  EXPECT_EQ(stale->sum(), SecondsToMicros(2.0));
  const Histogram* batch = db.metrics().FindHistogram("rules.batch_factor");
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->count(), 1u);
  EXPECT_EQ(batch->sum(), 2);

  // Batching-factor gauge: (1 created + 1 merged) / 1 created = 2.
  EXPECT_EQ(db.metrics().GaugeValues().at("rules.batching_factor"), 2.0);
}

// Disabling metrics removes the probes (and the ring) without affecting
// rule execution.
TEST(StalenessProbe, DisabledMetricsStillStampTheTask) {
  Database::Options opts;
  opts.mode = ExecutorMode::kSimulated;
  opts.advance_clock_by_cost = false;
  opts.enable_metrics = false;
  Database db(opts);
  ASSERT_TRUE(db.ExecuteScript("create table s (sym string, price double);"
                               "insert into s values ('a', 1.0);")
                  .ok());
  ASSERT_TRUE(db.RegisterFunction("recompute", [](FunctionContext&) {
                  return Status::OK();
                }).ok());
  ASSERT_TRUE(db.Execute("create rule r on s when updated price then "
                         "execute recompute unique after 1.0 seconds")
                  .ok());
  Timestamp observed_staleness = -1;
  db.executor().set_task_observer([&](const TaskControlBlock& t) {
    if (t.function_name == "recompute") {
      observed_staleness = t.commit_staleness_micros;
    }
  });
  ASSERT_TRUE(db.Execute("update s set price = 2.0 where sym = 'a'").ok());
  db.simulated()->RunUntilQuiescent();
  db.executor().set_task_observer(nullptr);

  EXPECT_FALSE(db.trace_ring().enabled());
  EXPECT_EQ(db.trace_ring().total_recorded(), 0u);
  // The task stamp (used by the PTA runner) works without the registry.
  EXPECT_EQ(observed_staleness, SecondsToMicros(1.0));
  EXPECT_EQ(db.metrics().FindHistogram("rules.staleness_us.recompute"),
            nullptr);
}

// The engine's trace ring sees the full lifecycle of a delayed rule task.
TEST(TraceRingIntegration, LifecycleEventsAreRecorded) {
  Database::Options opts;
  opts.mode = ExecutorMode::kSimulated;
  opts.advance_clock_by_cost = false;
  Database db(opts);
  ASSERT_TRUE(db.ExecuteScript("create table s (sym string, price double);"
                               "insert into s values ('a', 1.0);")
                  .ok());
  ASSERT_TRUE(db.RegisterFunction("recompute", [](FunctionContext&) {
                  return Status::OK();
                }).ok());
  ASSERT_TRUE(db.Execute("create rule r on s when updated price then "
                         "execute recompute unique after 1.0 seconds")
                  .ok());
  ASSERT_TRUE(db.Execute("update s set price = 2.0 where sym = 'a'").ok());
  ASSERT_TRUE(db.Execute("update s set price = 3.0 where sym = 'a'").ok());
  db.simulated()->RunUntilQuiescent();

  bool saw[9] = {false};
  for (const TraceEvent& e : db.trace_ring().Snapshot()) {
    saw[static_cast<int>(e.kind)] = true;
  }
  EXPECT_TRUE(saw[static_cast<int>(TraceEventKind::kSubmit)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventKind::kDelayed)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventKind::kReady)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventKind::kStart)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventKind::kFinish)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventKind::kCommit)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventKind::kMerge)]);

  std::string json = db.trace_ring().ToChromeJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("recompute"), std::string::npos);
}

}  // namespace
}  // namespace strip
