// Task queue, scheduling policy, and executor tests: delay/ready queue
// ordering, FIFO / EDF / value-density policies, the discrete-event
// executor's clock semantics, and the threaded executor's worker pool.

#include <gtest/gtest.h>

#include <atomic>

#include "strip/txn/simulated_executor.h"
#include "strip/txn/task_queues.h"
#include "strip/txn/threaded_executor.h"
#include "tests/test_util.h"

namespace strip {
namespace {

TaskPtr MakeTask(uint64_t id, Timestamp release = 0) {
  auto t = std::make_shared<TaskControlBlock>(id);
  t->release_time = release;
  return t;
}

TEST(DelayQueueTest, ReleasesInTimeOrder) {
  DelayQueue q;
  q.Push(MakeTask(1, 300));
  q.Push(MakeTask(2, 100));
  q.Push(MakeTask(3, 200));
  EXPECT_EQ(q.NextRelease(), 100);
  auto released = q.PopReleased(250);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0]->id(), 2u);
  EXPECT_EQ(released[1]->id(), 3u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.NextRelease(), 300);
  EXPECT_TRUE(q.PopReleased(299).empty());
}

TEST(DelayQueueTest, EmptyQueueHasNoDeadline) {
  DelayQueue q;
  EXPECT_EQ(q.NextRelease(), kNoDeadline);
  EXPECT_TRUE(q.empty());
}

TEST(ReadyQueueTest, FifoOrder) {
  ReadyQueue q(SchedulingPolicy::kFifo);
  q.Push(MakeTask(5));
  q.Push(MakeTask(3));
  q.Push(MakeTask(9));
  EXPECT_EQ(q.Pop()->id(), 5u);
  EXPECT_EQ(q.Pop()->id(), 3u);
  EXPECT_EQ(q.Pop()->id(), 9u);
  EXPECT_EQ(q.Pop(), nullptr);
}

TEST(ReadyQueueTest, EarliestDeadlineFirst) {
  ReadyQueue q(SchedulingPolicy::kEarliestDeadlineFirst);
  auto a = MakeTask(1);
  a->deadline = 300;
  auto b = MakeTask(2);
  b->deadline = 100;
  auto c = MakeTask(3);  // no deadline -> last
  q.Push(a);
  q.Push(b);
  q.Push(c);
  EXPECT_EQ(q.Pop()->id(), 2u);
  EXPECT_EQ(q.Pop()->id(), 1u);
  EXPECT_EQ(q.Pop()->id(), 3u);
}

TEST(ReadyQueueTest, ValueDensityFirst) {
  ReadyQueue q(SchedulingPolicy::kValueDensityFirst);
  auto a = MakeTask(1);
  a->value = 1.0;
  auto b = MakeTask(2);
  b->value = 10.0;
  auto c = MakeTask(3);
  c->value = 10.0;  // tie with b -> FIFO between them
  q.Push(a);
  q.Push(b);
  q.Push(c);
  EXPECT_EQ(q.Pop()->id(), 2u);
  EXPECT_EQ(q.Pop()->id(), 3u);
  EXPECT_EQ(q.Pop()->id(), 1u);
}

TEST(SchedulerTest, PolicyNames) {
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kFifo), "fifo");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kEarliestDeadlineFirst),
               "edf");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kValueDensityFirst),
               "value-density");
}

// ---------------------------------------------------------------------------
// SimulatedExecutor
// ---------------------------------------------------------------------------

TEST(SimulatedExecutorTest, HonorsReleaseTimes) {
  SimulatedExecutor ex(SchedulingPolicy::kFifo,
                       /*advance_clock_by_cost=*/false);
  std::vector<std::pair<uint64_t, Timestamp>> runs;
  auto submit = [&](uint64_t id, Timestamp release) {
    auto t = MakeTask(id, release);
    t->work = [&runs, &ex, id](TaskControlBlock&) {
      runs.emplace_back(id, ex.Now());
      return Status::OK();
    };
    ex.Submit(t);
  };
  submit(1, 1000);
  submit(2, 0);
  submit(3, 500);
  ex.RunUntil(400);
  ASSERT_EQ(runs.size(), 1u);  // only the immediate task
  EXPECT_EQ(runs[0].first, 2u);
  ex.RunUntilQuiescent();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[1].first, 3u);
  EXPECT_EQ(runs[1].second, 500);
  EXPECT_EQ(runs[2].first, 1u);
  EXPECT_EQ(runs[2].second, 1000);
}

TEST(SimulatedExecutorTest, FixedCostAdvancesVirtualClock) {
  SimulatedExecutor ex(SchedulingPolicy::kFifo,
                       /*advance_clock_by_cost=*/true);
  for (int i = 0; i < 3; ++i) {
    auto t = MakeTask(static_cast<uint64_t>(i));
    t->fixed_cost_micros = 100;
    t->work = [](TaskControlBlock&) { return Status::OK(); };
    ex.Submit(t);
  }
  ex.RunUntilQuiescent();
  EXPECT_EQ(ex.clock().Now(), 300);
  EXPECT_EQ(ex.stats().tasks_run, 3u);
  EXPECT_EQ(ex.stats().busy_micros, 300);
}

TEST(SimulatedExecutorTest, BusyCpuDelaysLaterTasks) {
  // Single-server semantics: a long task occupies the (virtual) CPU, so a
  // task released meanwhile starts late.
  SimulatedExecutor ex(SchedulingPolicy::kFifo, true);
  auto heavy = MakeTask(1, 0);
  heavy->fixed_cost_micros = 1000;
  heavy->work = [](TaskControlBlock&) { return Status::OK(); };
  ex.Submit(heavy);
  Timestamp light_started = -1;
  auto light = MakeTask(2, 100);  // released while heavy runs
  light->fixed_cost_micros = 10;
  light->work = [&](TaskControlBlock&) {
    light_started = ex.Now();
    return Status::OK();
  };
  ex.Submit(light);
  ex.RunUntilQuiescent();
  EXPECT_EQ(light_started, 1000);
}

TEST(SimulatedExecutorTest, TasksCanSpawnTasks) {
  SimulatedExecutor ex(SchedulingPolicy::kFifo, false);
  std::atomic<int> runs{0};
  std::function<void(int)> spawn = [&](int depth) {
    auto t = MakeTask(static_cast<uint64_t>(depth), ex.Now() + 100);
    t->work = [&, depth](TaskControlBlock&) {
      ++runs;
      if (depth < 5) spawn(depth + 1);
      return Status::OK();
    };
    ex.Submit(t);
  };
  spawn(1);
  ex.RunUntilQuiescent();
  EXPECT_EQ(runs.load(), 5);
  EXPECT_EQ(ex.clock().Now(), 500);
}

TEST(SimulatedExecutorTest, ObserverSeesResultsAndFailures) {
  SimulatedExecutor ex;
  int observed = 0, failed = 0;
  ex.set_task_observer([&](const TaskControlBlock& t) {
    ++observed;
    if (!t.result.ok()) ++failed;
  });
  auto ok = MakeTask(1);
  ok->work = [](TaskControlBlock&) { return Status::OK(); };
  auto bad = MakeTask(2);
  bad->work = [](TaskControlBlock&) { return Status::Internal("boom"); };
  ex.Submit(ok);
  ex.Submit(bad);
  ex.RunUntilQuiescent();
  EXPECT_EQ(observed, 2);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(ex.stats().tasks_failed, 1u);
}

TEST(SimulatedExecutorTest, EdfPolicyOrdersSimultaneousReleases) {
  SimulatedExecutor ex(SchedulingPolicy::kEarliestDeadlineFirst, false);
  std::vector<uint64_t> order;
  auto submit = [&](uint64_t id, Timestamp deadline) {
    auto t = MakeTask(id, 100);
    t->deadline = deadline;
    t->work = [&order, id](TaskControlBlock&) {
      order.push_back(id);
      return Status::OK();
    };
    ex.Submit(t);
  };
  submit(1, 900);
  submit(2, 300);
  submit(3, 600);
  ex.RunUntilQuiescent();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 1u);
}

// ---------------------------------------------------------------------------
// ThreadedExecutor
// ---------------------------------------------------------------------------

TEST(ThreadedExecutorTest, RunsAllTasksAndDrains) {
  ThreadedExecutor ex(3);
  std::atomic<int> runs{0};
  for (int i = 0; i < 50; ++i) {
    auto t = MakeTask(static_cast<uint64_t>(i));
    t->work = [&](TaskControlBlock&) {
      ++runs;
      return Status::OK();
    };
    ex.Submit(t);
  }
  ex.Drain();
  EXPECT_EQ(runs.load(), 50);
  EXPECT_EQ(ex.stats().tasks_run, 50u);
  ex.Shutdown();
}

TEST(ThreadedExecutorTest, DelayedTaskWaitsForWallClock) {
  ThreadedExecutor ex(1);
  std::atomic<bool> ran{false};
  auto t = MakeTask(1, ex.Now() + SecondsToMicros(0.08));
  t->work = [&](TaskControlBlock&) {
    ran = true;
    return Status::OK();
  };
  StopWatch watch;
  ex.Submit(t);
  ex.Drain();
  EXPECT_TRUE(ran.load());
  EXPECT_GE(watch.ElapsedMicros(), 70000);  // ~80 ms minus scheduling slop
  ex.Shutdown();
}

TEST(ThreadedExecutorTest, WorkersRunConcurrently) {
  ThreadedExecutor ex(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    auto t = MakeTask(static_cast<uint64_t>(i));
    t->work = [&](TaskControlBlock&) {
      int now = ++inside;
      int old_peak = peak.load();
      while (now > old_peak && !peak.compare_exchange_weak(old_peak, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      --inside;
      return Status::OK();
    };
    ex.Submit(t);
  }
  ex.Drain();
  EXPECT_GT(peak.load(), 1);  // at least two workers overlapped
  ex.Shutdown();
}

TEST(ThreadedExecutorTest, ShutdownIsIdempotent) {
  ThreadedExecutor ex(2);
  ex.Shutdown();
  ex.Shutdown();
}

}  // namespace
}  // namespace strip
