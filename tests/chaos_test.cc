// Deterministic chaos harness tests (DESIGN.md §9): seed replay produces
// byte-identical schedules, all four invariant classes run and actually
// detect planted corruption, the shrinker minimizes a failing seed, and
// the paper's PTA workload stays consistent under injected faults.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "strip/engine/database.h"
#include "strip/market/app_functions.h"
#include "strip/market/pta_runner.h"
#include "strip/storage/table.h"
#include "strip/testing/chaos.h"
#include "strip/testing/fault_injector.h"
#include "strip/testing/invariant_checker.h"
#include "strip/viewmaint/view_def.h"
#include "tests/test_util.h"

namespace strip {
namespace {

// --- FaultInjector ---------------------------------------------------------

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfTheSeed) {
  FaultInjectorConfig cfg;
  cfg.seed = 7;
  cfg.lock_abort_rate = 0.3;
  cfg.stall_rate = 0.3;
  cfg.extra_delay_rate = 0.3;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  // Same (seed, site, ids) -> same decision, regardless of call order:
  // b draws the sites backwards and must still agree with a.
  std::vector<bool> aborts;
  std::vector<Timestamp> stalls, delays, costs;
  for (uint64_t id = 1; id <= 64; ++id) {
    aborts.push_back(a.ShouldAbortLockAcquire(id, id % 5));
    stalls.push_back(a.StallBeforeRun(id));
    delays.push_back(a.ExtraReleaseDelay(id));
    costs.push_back(a.AssignCost(id));
  }
  for (uint64_t id = 64; id >= 1; --id) {
    EXPECT_EQ(b.AssignCost(id), costs[id - 1]);
    EXPECT_EQ(b.ExtraReleaseDelay(id), delays[id - 1]);
    EXPECT_EQ(b.StallBeforeRun(id), stalls[id - 1]);
    EXPECT_EQ(b.ShouldAbortLockAcquire(id, id % 5), aborts[id - 1]);
  }
}

TEST(FaultInjectorTest, DifferentSeedsDisagreeAndZeroRatesAreSilent) {
  FaultInjectorConfig cfg;
  cfg.seed = 7;
  cfg.lock_abort_rate = 0.5;
  FaultInjectorConfig other = cfg;
  other.seed = 8;
  FaultInjector a(cfg), b(other);
  int disagreements = 0;
  for (uint64_t id = 1; id <= 256; ++id) {
    if (a.ShouldAbortLockAcquire(id, 0) != b.ShouldAbortLockAcquire(id, 0)) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);

  FaultInjectorConfig quiet;  // all rates zero
  quiet.seed = 7;
  quiet.assign_fixed_costs = false;
  FaultInjector q(quiet);
  for (uint64_t id = 1; id <= 64; ++id) {
    EXPECT_FALSE(q.ShouldAbortLockAcquire(id, 0));
    EXPECT_EQ(q.StallBeforeRun(id), 0);
    EXPECT_EQ(q.ExtraReleaseDelay(id), 0);
    EXPECT_EQ(q.AssignCost(id), -1);
  }
  EXPECT_EQ(q.stats().lock_aborts.load(), 0u);
}

// --- Seed replay determinism ----------------------------------------------

// The three checked-in tier-1 seeds: each runs the full workload with all
// invariant classes on, twice, and the executions must match byte for
// byte. Chosen arbitrarily and then frozen; if one ever fails, that seed
// IS the reproducer — do not change it, fix the bug.
constexpr uint64_t kCannedSeeds[] = {101, 20260806, 0xdeadbeef};

TEST(ChaosTest, CannedSeedsReplayByteIdentical) {
  for (uint64_t seed : kCannedSeeds) {
    ChaosOptions o;
    o.seed = seed;
    ChaosReport first = RunChaos(o);
    ChaosReport second = RunChaos(o);
    EXPECT_TRUE(first.ok) << first.failure;
    EXPECT_TRUE(second.ok) << second.failure;
    EXPECT_GT(first.steps, 0u);
    EXPECT_FALSE(first.execute_order.empty());
    // Byte-identical schedule: same tasks, same virtual times, same
    // results, same order.
    EXPECT_EQ(first.execute_order, second.execute_order)
        << "seed " << seed << " diverged between two runs";
    EXPECT_EQ(first.steps, second.steps);
    EXPECT_EQ(first.applied_updates, second.applied_updates);
    EXPECT_EQ(first.injected.lock_aborts, second.injected.lock_aborts);
    EXPECT_EQ(first.injected.stalls, second.injected.stalls);
    EXPECT_EQ(first.injected.extra_delays, second.injected.extra_delays);
  }
}

TEST(ChaosTest, FaultsAndPerturbationsActuallyFire) {
  // A run whose knobs are all on must actually exercise them — otherwise
  // the harness is vacuously green.
  ChaosOptions o;
  o.seed = kCannedSeeds[0];
  ChaosReport r = RunChaos(o);
  ASSERT_TRUE(r.ok) << r.failure;
  EXPECT_EQ(r.applied_updates, r.feed_events);  // every update retried home
  EXPECT_GT(r.feed_events, static_cast<uint64_t>(o.num_events));  // dups
  EXPECT_GT(r.injected.lock_aborts, 0u);
  EXPECT_GT(r.injected.stalls, 0u);
  EXPECT_GT(r.injected.extra_delays, 0u);
  EXPECT_GT(r.injected.costs_assigned, 0u);
  EXPECT_GT(r.wait_die_aborts, 0u);         // the injected deaths surfaced
  EXPECT_GT(r.rule_tasks_created, 0u);
  EXPECT_GT(r.firings_merged, 0u);          // unique batching happened
}

// Frozen erase/resurrect churn seed: price updates interleaved with
// state-preserving delete + re-insert of base rows, so slots tombstone,
// get reused, and (under the injected aborts) resurrect through txn undo
// — with the page-consistency invariant checked after every step. Same
// freeze discipline as kCannedSeeds: if it fails, the seed is the
// reproducer; fix the bug, don't change the seed.
TEST(ChaosTest, ChurnSeedExercisesSlotReuseDeterministically) {
  ChaosOptions o;
  o.seed = 0xc0ffee;
  o.churn_rate = 0.35;
  ChaosReport first = RunChaos(o);
  ChaosReport second = RunChaos(o);
  ASSERT_TRUE(first.ok) << first.failure;
  ASSERT_TRUE(second.ok) << second.failure;
  EXPECT_GT(first.churn_events, 0u);  // the knob actually fired
  EXPECT_EQ(first.execute_order, second.execute_order)
      << "churn seed diverged between two runs";
  EXPECT_EQ(first.churn_events, second.churn_events);
  EXPECT_NE(first.execute_order.find("feed-churn"), std::string::npos);
}

// Frozen maintained-view seed (invariant f): feed updates drive the
// generated delta-maintenance rule for a weighted-sum join view while
// churn mixes deletes and re-inserts into the same delay windows, so the
// _ins/_del companions and the hidden-count bookkeeping are exercised
// under injected aborts, stalls, and merges. At quiescence the view must
// equal a from-scratch recompute exactly. Same freeze discipline as
// kCannedSeeds: if this fails, the seed is the reproducer — fix the bug,
// don't change the seed.
TEST(ChaosTest, MaintainedViewSeedStaysConsistentDeterministically) {
  ChaosOptions o;
  o.seed = 0x1f51;
  o.with_maintained_view = true;
  o.churn_rate = 0.25;  // insert/delete mix through the maintenance rules
  ChaosReport first = RunChaos(o);
  ChaosReport second = RunChaos(o);
  ASSERT_TRUE(first.ok) << first.failure;
  ASSERT_TRUE(second.ok) << second.failure;
  EXPECT_GT(first.churn_events, 0u);
  // The generated maintainers actually ran — update, insert, and delete
  // companions all appear in the schedule.
  EXPECT_NE(first.execute_order.find("fn=maintain_chaos_view "),
            std::string::npos);
  EXPECT_NE(first.execute_order.find("fn=maintain_chaos_view_ins"),
            std::string::npos);
  EXPECT_NE(first.execute_order.find("fn=maintain_chaos_view_del"),
            std::string::npos);
  EXPECT_EQ(first.execute_order, second.execute_order)
      << "maintained-view seed diverged between two runs";
  EXPECT_GT(first.firings_merged, 0u);  // deltas composed inside windows
}

// --- Sharded-cluster chaos: invariant (g) ----------------------------------

// Frozen multi-shard seeds: the perturbed feed is symbol-hash routed over
// the wire across simulated shard engines, each maintaining a partial view
// whose folded deltas ship to the merge engine — all under per-engine
// fault injectors. At quiescence the merged composite view must exactly
// equal a from-scratch recompute over the union of the shard base tables
// (invariant g). Same freeze discipline as kCannedSeeds: if one fails,
// the (seed, shards) pair is the reproducer — fix the bug, don't change
// the seed.
constexpr uint64_t kClusterSeeds[] = {0x5a4d, 20260808};

TEST(ClusterChaosTest, FrozenMultiShardSeedsHoldInvariantG) {
  for (int shards : {2, 3}) {
    for (uint64_t seed : kClusterSeeds) {
      ChaosOptions o;
      o.seed = seed;
      ChaosReport r = RunClusterChaos(o, shards);
      EXPECT_TRUE(r.ok) << "seed " << seed << " shards " << shards << ": "
                        << r.failure;
      EXPECT_GT(r.steps, 0u);
      // The cross-engine pipeline actually ran: shipments crossed the
      // shard->merge boundary and the merge rule fired.
      EXPECT_GT(r.deltas_shipped, 0u)
          << "seed " << seed << " shards " << shards;
      EXPECT_NE(r.execute_order.find("merge task="), std::string::npos);
      EXPECT_NE(r.execute_order.find("fn=merge_chaos_view"),
                std::string::npos);
    }
  }
}

TEST(ClusterChaosTest, ClusterSeedReplaysByteIdentical) {
  ChaosOptions o;
  o.seed = kClusterSeeds[0];
  ChaosReport first = RunClusterChaos(o, 2);
  ChaosReport second = RunClusterChaos(o, 2);
  ASSERT_TRUE(first.ok) << first.failure;
  ASSERT_TRUE(second.ok) << second.failure;
  EXPECT_EQ(first.execute_order, second.execute_order)
      << "cluster seed diverged between two runs";
  EXPECT_EQ(first.steps, second.steps);
  EXPECT_EQ(first.deltas_shipped, second.deltas_shipped);
  EXPECT_EQ(first.injected.lock_aborts, second.injected.lock_aborts);
  // Sharding changes the schedule: the same seed on a different shard
  // count is a different cluster, not a replay.
  ChaosReport other = RunClusterChaos(o, 3);
  ASSERT_TRUE(other.ok) << other.failure;
  EXPECT_NE(other.execute_order, first.execute_order);
}

TEST(ClusterChaosTest, PlantedBogusGroupTripsInvariantG) {
  ChaosOptions o;
  o.seed = kClusterSeeds[0];
  o.plant_failure_at_step = 40;
  ChaosReport r = RunClusterChaos(o, 2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("invariant g"), std::string::npos) << r.failure;
}

TEST(ChaosTest, DifferentSeedsProduceDifferentSchedules) {
  ChaosOptions a, b;
  a.seed = kCannedSeeds[0];
  b.seed = kCannedSeeds[1];
  ChaosReport ra = RunChaos(a);
  ChaosReport rb = RunChaos(b);
  ASSERT_TRUE(ra.ok) << ra.failure;
  ASSERT_TRUE(rb.ok) << rb.failure;
  EXPECT_NE(ra.execute_order, rb.execute_order);
}

// --- The invariant checker detects planted corruption ----------------------

TEST(InvariantCheckerTest, CleanQuiescentDatabasePasses) {
  Database db;
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (k string, v int);
    insert into t values ('a', 1), ('b', 2);
  )"));
  db.simulated()->RunUntilQuiescent();
  InvariantChecker checker(&db, InvariantOptions{});
  ASSERT_OK(checker.CheckStep());
  ASSERT_OK(checker.CheckQuiescent(nullptr));
  EXPECT_EQ(checker.steps_checked(), 2u);
}

TEST(InvariantCheckerTest, DetectsARecordRefcountLeak) {
  Database db;
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (k string, v int);
    insert into t values ('a', 1);
  )"));
  db.simulated()->RunUntilQuiescent();
  InvariantChecker checker(&db, InvariantOptions{});
  ASSERT_OK(checker.CheckStep());
  // Plant a leak: an extra pin the audit cannot account for.
  RecordRef leaked;
  db.catalog().FindTable("t")->ForEachRecord([&](const RecordRef& r) {
    if (leaked == nullptr) leaked = r;
  });
  ASSERT_NE(leaked, nullptr);
  Status st = checker.CheckStep();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("invariant a"), std::string::npos)
      << st.ToString();
  leaked.reset();
  ASSERT_OK(checker.CheckStep());
}

TEST(InvariantCheckerTest, DetectsLockTableResidue) {
  Database db;
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (k string, v int);
    insert into t values ('a', 1);
  )"));
  db.simulated()->RunUntilQuiescent();
  // An in-flight transaction holding a lock is exactly what CheckStep
  // must reject: between steps nothing may be active.
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db.Begin());
  ASSERT_OK(db.ExecuteInTxn(txn, "update t set v = 2 where k = 'a'")
                .status());
  InvariantChecker checker(&db, InvariantOptions{});
  Status st = checker.CheckStep();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("invariant b"), std::string::npos)
      << st.ToString();
  ASSERT_OK(db.Commit(txn));
  ASSERT_OK(checker.CheckStep());
}

TEST(InvariantCheckerTest, DetectsPlantedPageCorruption) {
  Database db;
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (k string, v int);
    insert into t values ('a', 1), ('b', 2);
  )"));
  db.simulated()->RunUntilQuiescent();
  InvariantChecker checker(&db, InvariantOptions{});
  ASSERT_OK(checker.CheckStep());
  // Flip a dead slot's bit on: the bitmap now disagrees with live_count.
  Table* t = db.catalog().FindTable("t");
  RowPage* page = t->rows().page(0);
  page->live[0] |= 1ull << 5;
  Status st = checker.CheckStep();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("invariant e"), std::string::npos)
      << st.ToString();
  page->live[0] &= ~(1ull << 5);
  ASSERT_OK(checker.CheckStep());
}

TEST(InvariantCheckerTest, DetectsAStaleMaintainedView) {
  Database db;
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0);
    create materialized view mv as
      select g, sum(v) as total from t group by g;
  )"));
  // Claim the view is rule-maintained without installing any rules: the
  // first base change leaves it stale, which is exactly what invariant (f)
  // must catch at quiescence.
  ASSERT_OK(db.views().MarkMaintained("mv"));
  db.simulated()->RunUntilQuiescent();
  InvariantChecker checker(&db, InvariantOptions{});
  ASSERT_OK(checker.CheckQuiescent(nullptr));

  ASSERT_OK(db.Execute("insert into t values ('a', 9.0)").status());
  db.simulated()->RunUntilQuiescent();
  Status st = checker.CheckQuiescent(nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("invariant f"), std::string::npos)
      << st.ToString();

  // A from-scratch refresh repairs it.
  ASSERT_OK(db.views().RefreshView("mv"));
  db.simulated()->RunUntilQuiescent();
  ASSERT_OK(checker.CheckQuiescent(nullptr));
}

// --- Shrinking -------------------------------------------------------------

TEST(ChaosTest, ShrinkerMinimizesAFailingSeed) {
  // lock_abort_rate = 1.0 kills every acquire, so every feed update
  // exhausts its retries: a guaranteed failure whose minimal form is a
  // single event with the other fault classes stripped.
  ChaosOptions o;
  o.seed = 5;
  o.num_events = 64;
  o.faults.lock_abort_rate = 1.0;
  ShrinkResult res = ShrinkFailure(o);
  EXPECT_FALSE(res.report.ok);
  EXPECT_EQ(res.options.num_events, 1);
  // The essential ingredient survives; incidental classes are stripped.
  EXPECT_EQ(res.options.faults.lock_abort_rate, 1.0);
  EXPECT_EQ(res.options.faults.stall_rate, 0.0);
  EXPECT_EQ(res.options.faults.extra_delay_rate, 0.0);
  EXPECT_GT(res.runs, 1);
  EXPECT_NE(res.trail.find("kept"), std::string::npos);
  // The minimized options still reproduce deterministically.
  ChaosReport replay = RunChaos(res.options);
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.failure, res.report.failure);
}

// --- PTA workload under chaos ----------------------------------------------

TEST(ChaosTest, PtaWorkloadSurvivesInjectedFaults) {
  // The paper's program-trading workload, with injected worker stalls,
  // late timer promotions, and seed-derived task costs. Derived data must
  // still equal a from-scratch recompute at quiescence, and the step
  // invariants must hold.
  TraceOptions to;
  to.num_stocks = 60;
  to.duration_seconds = 10;
  to.target_updates = 300;
  to.seed = 11;
  MarketTrace trace = MarketTrace::Generate(to);
  PtaConfig cfg;
  cfg.num_composites = 6;
  cfg.stocks_per_composite = 10;
  cfg.num_options = 80;
  cfg.seed = 12;

  PtaExperiment exp(trace, cfg);
  ASSERT_OK(exp.Setup(CompRuleSql(CompRuleVariant::kUniqueOnComp, 0.5)));

  FaultInjectorConfig fi;
  fi.seed = 99;
  fi.stall_rate = 0.15;
  fi.extra_delay_rate = 0.15;
  FaultInjector injector(fi);
  exp.db().locks().set_fault_injector(&injector);
  exp.db().simulated()->set_fault_injector(&injector);

  ASSERT_OK_AND_ASSIGN(PtaRunResult result, exp.Run());
  EXPECT_EQ(result.failed_tasks, 0u);
  EXPECT_GT(result.num_recomputes, 0u);
  EXPECT_GT(injector.stats().stalls.load(), 0u);

  InvariantChecker checker(&exp.db(), InvariantOptions{});
  ASSERT_OK(checker.CheckQuiescent([](Database& db) {
    return CheckDerivedDataConsistency(db, 0.05, 1e-6,
                                       /*check_comps=*/true,
                                       /*check_options=*/false);
  }));

  exp.db().simulated()->set_fault_injector(nullptr);
  exp.db().locks().set_fault_injector(nullptr);
}

}  // namespace
}  // namespace strip
