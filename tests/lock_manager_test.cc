// Lock manager tests: compatibility matrix, re-entrancy, upgrades,
// wait-die deadlock avoidance, blocking + wakeup across threads.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "strip/storage/table.h"
#include "strip/txn/lock_manager.h"
#include "strip/txn/transaction.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  return s;
}

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : table_("t", KV()), older_(1, 0), younger_(2, 0) {}

  LockManager lm_;
  Table table_;
  Transaction older_;
  Transaction younger_;
};

TEST_F(LockManagerTest, SharedLocksAreCompatible) {
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kShared));
  ASSERT_OK(lm_.Acquire(&younger_, key, LockMode::kShared));
  EXPECT_EQ(lm_.NumLockedKeys(), 1u);
  lm_.ReleaseAll(&older_);
  lm_.ReleaseAll(&younger_);
  EXPECT_EQ(lm_.NumLockedKeys(), 0u);
}

TEST_F(LockManagerTest, ReentrantAcquisition) {
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kShared));  // weaker: no-op
  EXPECT_EQ(lm_.NumHeld(&older_), 1u);
  lm_.ReleaseAll(&older_);
}

TEST_F(LockManagerTest, UpgradeWhenSoleHolder) {
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kShared));
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  // Now exclusive: a younger shared request dies.
  EXPECT_EQ(lm_.Acquire(&younger_, key, LockMode::kShared).code(),
            StatusCode::kAborted);
  lm_.ReleaseAll(&older_);
}

TEST_F(LockManagerTest, WaitDieYoungerDies) {
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  Status st = lm_.Acquire(&younger_, key, LockMode::kExclusive);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_NE(st.message().find("wait-die"), std::string::npos);
  lm_.ReleaseAll(&older_);
}

TEST_F(LockManagerTest, RowLocksAreIndependent) {
  ASSERT_OK(lm_.Acquire(&older_, LockKey::ForRow(&table_, 1),
                        LockMode::kExclusive));
  ASSERT_OK(lm_.Acquire(&younger_, LockKey::ForRow(&table_, 2),
                        LockMode::kExclusive));
  EXPECT_EQ(lm_.NumLockedKeys(), 2u);
  lm_.ReleaseAll(&older_);
  lm_.ReleaseAll(&younger_);
}

TEST_F(LockManagerTest, OlderWaitsUntilYoungerReleases) {
  // Younger holds X; older requests it and must BLOCK (not die) until the
  // younger transaction releases.
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&younger_, key, LockMode::kExclusive));

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status st = lm_.Acquire(&older_, key, LockMode::kExclusive);
    EXPECT_TRUE(st.ok()) << st.ToString();
    acquired = true;
  });
  // Give the waiter a moment to block.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  lm_.ReleaseAll(&younger_);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm_.ReleaseAll(&older_);
}

TEST_F(LockManagerTest, ManyThreadsSerializeOnExclusiveLock) {
  // Wait-die may abort younger requesters; the standard protocol retries
  // the aborted transaction. Mutual exclusion must hold throughout.
  constexpr int kThreads = 8;
  LockKey key = LockKey::WholeTable(&table_);
  std::atomic<uint64_t> next_txn_id{1};
  int counter = 0;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (;;) {
        Transaction txn(next_txn_id.fetch_add(1), 0);
        Status st = lm_.Acquire(&txn, key, LockMode::kExclusive);
        if (!st.ok()) {
          ASSERT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
          lm_.ReleaseAll(&txn);
          std::this_thread::yield();
          continue;  // retry as a fresh (younger) transaction
        }
        int v = counter;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter = v + 1;  // would race without mutual exclusion
        lm_.ReleaseAll(&txn);
        return;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads);
  EXPECT_EQ(lm_.NumLockedKeys(), 0u);
}

}  // namespace
}  // namespace strip
