// Lock manager tests: compatibility matrix, re-entrancy, upgrades,
// wait-die deadlock avoidance, blocking + wakeup across threads, shard
// striping (hash distribution, cross-shard release, stats counters).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "strip/storage/table.h"
#include "strip/testing/fault_injector.h"
#include "strip/txn/lock_manager.h"
#include "strip/txn/transaction.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  return s;
}

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : table_("t", KV()), older_(1, 0), younger_(2, 0) {}

  LockManager lm_;
  Table table_;
  Transaction older_;
  Transaction younger_;
};

TEST_F(LockManagerTest, WholeTableDoesNotAliasRowZero) {
  // Regression: WholeTable(t) used to be spelled {t, 0}, colliding with
  // ForRow(t, 0). The sentinel makes them distinct keys, so two
  // transactions can hold them exclusively at the same time.
  EXPECT_NE(LockKey::WholeTable(&table_), LockKey::ForRow(&table_, 0));
  EXPECT_EQ(LockKey::WholeTable(&table_),
            LockKey::ForRow(&table_, LockKey::kWholeTableRowId));
  ASSERT_OK(lm_.Acquire(&older_, LockKey::WholeTable(&table_),
                        LockMode::kExclusive));
  ASSERT_OK(lm_.Acquire(&younger_, LockKey::ForRow(&table_, 0),
                        LockMode::kExclusive));
  EXPECT_EQ(lm_.NumLockedKeys(), 2u);
  lm_.ReleaseAll(&older_);
  lm_.ReleaseAll(&younger_);
  EXPECT_EQ(lm_.NumLockedKeys(), 0u);
}

TEST_F(LockManagerTest, SharedLocksAreCompatible) {
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kShared));
  ASSERT_OK(lm_.Acquire(&younger_, key, LockMode::kShared));
  EXPECT_EQ(lm_.NumLockedKeys(), 1u);
  lm_.ReleaseAll(&older_);
  lm_.ReleaseAll(&younger_);
  EXPECT_EQ(lm_.NumLockedKeys(), 0u);
}

TEST_F(LockManagerTest, ReentrantAcquisition) {
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kShared));  // weaker: no-op
  EXPECT_EQ(lm_.NumHeld(&older_), 1u);
  lm_.ReleaseAll(&older_);
}

TEST_F(LockManagerTest, UpgradeWhenSoleHolder) {
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kShared));
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  // Now exclusive: a younger shared request dies.
  EXPECT_EQ(lm_.Acquire(&younger_, key, LockMode::kShared).code(),
            StatusCode::kAborted);
  lm_.ReleaseAll(&older_);
}

TEST_F(LockManagerTest, WaitDieYoungerDies) {
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  Status st = lm_.Acquire(&younger_, key, LockMode::kExclusive);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_NE(st.message().find("wait-die"), std::string::npos);
  lm_.ReleaseAll(&older_);
}

TEST_F(LockManagerTest, RowLocksAreIndependent) {
  ASSERT_OK(lm_.Acquire(&older_, LockKey::ForRow(&table_, 1),
                        LockMode::kExclusive));
  ASSERT_OK(lm_.Acquire(&younger_, LockKey::ForRow(&table_, 2),
                        LockMode::kExclusive));
  EXPECT_EQ(lm_.NumLockedKeys(), 2u);
  lm_.ReleaseAll(&older_);
  lm_.ReleaseAll(&younger_);
}

TEST_F(LockManagerTest, OlderWaitsUntilYoungerReleases) {
  // Younger holds X; older requests it and must BLOCK (not die) until the
  // younger transaction releases.
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&younger_, key, LockMode::kExclusive));

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status st = lm_.Acquire(&older_, key, LockMode::kExclusive);
    EXPECT_TRUE(st.ok()) << st.ToString();
    acquired = true;
  });
  // Give the waiter a moment to block.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  lm_.ReleaseAll(&younger_);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  lm_.ReleaseAll(&older_);
}

TEST_F(LockManagerTest, ManyThreadsSerializeOnExclusiveLock) {
  // Wait-die may abort younger requesters; the standard protocol retries
  // the aborted transaction. Mutual exclusion must hold throughout.
  constexpr int kThreads = 8;
  LockKey key = LockKey::WholeTable(&table_);
  std::atomic<uint64_t> next_txn_id{1};
  int counter = 0;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (;;) {
        Transaction txn(next_txn_id.fetch_add(1), 0);
        Status st = lm_.Acquire(&txn, key, LockMode::kExclusive);
        if (!st.ok()) {
          ASSERT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
          lm_.ReleaseAll(&txn);
          std::this_thread::yield();
          continue;  // retry as a fresh (younger) transaction
        }
        int v = counter;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter = v + 1;  // would race without mutual exclusion
        lm_.ReleaseAll(&txn);
        return;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads);
  EXPECT_EQ(lm_.NumLockedKeys(), 0u);
}

TEST_F(LockManagerTest, SequentialRowIdsSpreadAcrossShards) {
  // A burst of updates walks a table in row-id order; the splitmix64 key
  // hash must spread consecutive row ids over the shards instead of
  // clustering them (the weakness of xor-folding table ^ row_id).
  constexpr int kRows = 4096;
  std::vector<int> per_shard(LockManager::kNumShards, 0);
  for (int row = 0; row < kRows; ++row) {
    size_t shard = LockManager::ShardOf(
        LockKey::ForRow(&table_, static_cast<uint64_t>(row)));
    ASSERT_LT(shard, LockManager::kNumShards);
    ++per_shard[shard];
  }
  int expect = kRows / static_cast<int>(LockManager::kNumShards);
  // Every shard within 50% of uniform: catastrophic clustering (all rows
  // on a handful of shards) is what this guards against.
  for (size_t s = 0; s < LockManager::kNumShards; ++s) {
    EXPECT_GT(per_shard[s], expect / 2) << "shard " << s;
    EXPECT_LT(per_shard[s], expect * 2) << "shard " << s;
  }
}

TEST_F(LockManagerTest, HashDiffersForAdjacentRows) {
  LockKeyHash h;
  size_t collisions = 0;
  for (uint64_t row = 0; row < 1000; ++row) {
    if (h(LockKey::ForRow(&table_, row)) ==
        h(LockKey::ForRow(&table_, row + 1))) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0u);
}

TEST_F(LockManagerTest, ReleaseAllSpansShards) {
  // Locks on many row ids land on (virtually) every shard; one ReleaseAll
  // must find them all via the transaction's shard mask.
  constexpr uint64_t kRows = 256;
  for (uint64_t row = 0; row < kRows; ++row) {
    ASSERT_OK(lm_.Acquire(&older_, LockKey::ForRow(&table_, row),
                          LockMode::kExclusive));
  }
  EXPECT_EQ(lm_.NumHeld(&older_), kRows);
  EXPECT_EQ(lm_.NumLockedKeys(), kRows);
  lm_.ReleaseAll(&older_);
  EXPECT_EQ(lm_.NumHeld(&older_), 0u);
  EXPECT_EQ(lm_.NumLockedKeys(), 0u);
  // The mask was cleared: another full acquire/release round still works.
  for (uint64_t row = 0; row < kRows; ++row) {
    ASSERT_OK(lm_.Acquire(&older_, LockKey::ForRow(&table_, row),
                          LockMode::kShared));
  }
  lm_.ReleaseAll(&older_);
  EXPECT_EQ(lm_.NumLockedKeys(), 0u);
}

TEST_F(LockManagerTest, StatsCountAcquiresWaitsAndAborts) {
  LockKey key = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  EXPECT_EQ(lm_.stats().acquires.load(), 1u);

  // Younger conflicting request: wait-die abort, counted.
  EXPECT_EQ(lm_.Acquire(&younger_, key, LockMode::kExclusive).code(),
            StatusCode::kAborted);
  EXPECT_EQ(lm_.stats().wait_die_aborts.load(), 1u);
  lm_.ReleaseAll(&older_);

  // Older blocking behind younger: counted as one wait with nonzero time.
  ASSERT_OK(lm_.Acquire(&younger_, key, LockMode::kExclusive));
  std::thread waiter([&] {
    ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm_.ReleaseAll(&younger_);
  waiter.join();
  lm_.ReleaseAll(&older_);
  EXPECT_EQ(lm_.stats().waits.load(), 1u);
  EXPECT_GT(lm_.stats().wait_micros.load(), 0u);
}

TEST_F(LockManagerTest, UpgradeInPlaceOnOneShardedKey) {
  // Upgrade on a row key (not the whole-table key of UpgradeWhenSoleHolder)
  // stays a single held entry on its shard.
  LockKey key = LockKey::ForRow(&table_, 123);
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kShared));
  ASSERT_OK(lm_.Acquire(&older_, key, LockMode::kExclusive));
  EXPECT_EQ(lm_.NumHeld(&older_), 1u);
  EXPECT_EQ(lm_.Acquire(&younger_, key, LockMode::kShared).code(),
            StatusCode::kAborted);
  lm_.ReleaseAll(&older_);
  EXPECT_EQ(lm_.NumLockedKeys(), 0u);
}

TEST_F(LockManagerTest, ConcurrentDisjointRowsDontInterfere) {
  // Threads hammering different rows (hence mostly different shards) must
  // never block each other or corrupt the shard maps.
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<uint64_t> next_txn_id{1};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        Transaction txn(next_txn_id.fetch_add(1), 0);
        uint64_t row = static_cast<uint64_t>(t * kIters + i);
        ASSERT_OK(lm_.Acquire(&txn, LockKey::ForRow(&table_, row),
                              LockMode::kExclusive));
        ASSERT_OK(lm_.Acquire(&txn, LockKey::ForRow(&table_, row + 10000),
                              LockMode::kShared));
        lm_.ReleaseAll(&txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(lm_.NumLockedKeys(), 0u);
  EXPECT_EQ(lm_.stats().acquires.load(),
            static_cast<uint64_t>(kThreads * kIters * 2));
}

// ---------------------------------------------------------------------------
// Wait-die restart path (chaos satellite): a death must leave zero residue
// in every shard, and a restarted transaction keeps its ORIGINAL age.
// ---------------------------------------------------------------------------

TEST_F(LockManagerTest, DeathReleasesEverythingAcrossShards) {
  // The victim holds row locks spread across many shards when it dies on
  // a contested key; ReleaseAll must scrub every shard, not just the one
  // it died in.
  for (uint64_t row = 0; row <= 64; ++row) {
    ASSERT_OK(lm_.Acquire(&younger_, LockKey::ForRow(&table_, row),
                          LockMode::kExclusive));
  }
  LockKey contested = LockKey::WholeTable(&table_);
  ASSERT_OK(lm_.Acquire(&older_, contested, LockMode::kExclusive));
  EXPECT_EQ(lm_.Acquire(&younger_, contested, LockMode::kShared).code(),
            StatusCode::kAborted);
  lm_.ReleaseAll(&younger_);

  LockManager::Audit audit = lm_.AuditState();
  EXPECT_EQ(audit.locked_keys, 1u);     // only the older holder's key
  EXPECT_EQ(audit.holder_entries, 1u);
  EXPECT_EQ(audit.tracked_txns, 1u);
  EXPECT_EQ(audit.waiters, 0u);

  lm_.ReleaseAll(&older_);
  audit = lm_.AuditState();
  EXPECT_EQ(audit.locked_keys, 0u);
  EXPECT_EQ(audit.holder_entries, 0u);
  EXPECT_EQ(audit.tracked_txns, 0u);
  EXPECT_EQ(audit.waiters, 0u);
}

TEST_F(LockManagerTest, InjectedDeathThenRestartKeepsOriginalPriority) {
  FaultInjectorConfig cfg;
  cfg.seed = 3;
  cfg.lock_abort_rate = 1.0;  // every acquire dies
  FaultInjector injector(cfg);
  lm_.set_fault_injector(&injector);

  Transaction victim(10, 0);
  LockKey key = LockKey::WholeTable(&table_);
  Status st = lm_.Acquire(&victim, key, LockMode::kExclusive);
  ASSERT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_NE(st.message().find("injected"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(injector.stats().lock_aborts.load(), 1u);
  EXPECT_GE(lm_.stats().wait_die_aborts.load(), 1u);
  lm_.ReleaseAll(&victim);
  lm_.set_fault_injector(nullptr);

  // An injected death is killed BEFORE touching the lock table: nothing
  // to scrub, nothing leaked.
  LockManager::Audit audit = lm_.AuditState();
  EXPECT_EQ(audit.locked_keys, 0u);
  EXPECT_EQ(audit.holder_entries, 0u);
  EXPECT_EQ(audit.tracked_txns, 0u);

  // Classic wait-die restart: fresh id, ORIGINAL priority. The restarted
  // transaction must still look older than transactions born after the
  // victim — a younger requester dies against it.
  Transaction restarted(11, 0, victim.priority());
  EXPECT_EQ(restarted.priority(), 10u);
  ASSERT_OK(lm_.Acquire(&restarted, key, LockMode::kExclusive));
  Transaction young(12, 0);
  EXPECT_EQ(lm_.Acquire(&young, key, LockMode::kShared).code(),
            StatusCode::kAborted);
  lm_.ReleaseAll(&restarted);
  EXPECT_EQ(lm_.AuditState().locked_keys, 0u);
}

TEST_F(LockManagerTest, InjectedDeathsUnderConcurrencyLeaveCleanShards) {
  // Threads race acquire/release with a 30% injected death rate; after the
  // storm every shard must be empty — the residue invariant the chaos
  // harness checks after every simulated step.
  FaultInjectorConfig cfg;
  cfg.seed = 17;
  cfg.lock_abort_rate = 0.3;
  FaultInjector injector(cfg);
  lm_.set_fault_injector(&injector);

  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  std::atomic<uint64_t> next_txn_id{100};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        Transaction txn(next_txn_id.fetch_add(1), 0);
        uint64_t row = static_cast<uint64_t>((t * kIters + i) % 50);
        Status a = lm_.Acquire(&txn, LockKey::ForRow(&table_, row),
                               LockMode::kExclusive);
        if (a.ok()) {
          // Second acquire may draw an injected death mid-transaction.
          (void)lm_.Acquire(&txn, LockKey::ForRow(&table_, row + 1000),
                            LockMode::kShared);
        }
        lm_.ReleaseAll(&txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  lm_.set_fault_injector(nullptr);

  EXPECT_GT(injector.stats().lock_aborts.load(), 0u);
  LockManager::Audit audit = lm_.AuditState();
  EXPECT_EQ(audit.locked_keys, 0u);
  EXPECT_EQ(audit.holder_entries, 0u);
  EXPECT_EQ(audit.tracked_txns, 0u);
  EXPECT_EQ(audit.waiters, 0u);
}

}  // namespace
}  // namespace strip
