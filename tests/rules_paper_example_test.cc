// Reproduces the paper's worked example of Figures 4 and 5: three stocks,
// two composites, transactions T1 and T2, under the non-unique rule
// (do_comps1), coarse unique (do_comps2), and unique on comp (do_comps3).

#include <gtest/gtest.h>

#include "strip/engine/database.h"
#include "strip/market/app_functions.h"

namespace strip {
namespace {

#define ASSERT_OK(expr)                              \
  do {                                               \
    auto _st = (expr);                               \
    ASSERT_TRUE(_st.ok()) << _st.ToString();         \
  } while (0)

/// Database pre-loaded with the Figure 4 tables. Uses logical virtual time
/// (task cost does not advance the clock) for exact delay-window control.
class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : db_(MakeOptions()) {}

  static Database::Options MakeOptions() {
    Database::Options o;
    o.mode = ExecutorMode::kSimulated;
    o.advance_clock_by_cost = false;
    return o;
  }

  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      create table stocks (symbol string, price double);
      create index on stocks (symbol);
      create table comps_list (comp string, symbol string, weight double);
      create index on comps_list (symbol);
      create table comp_prices (comp string, price double);
      create index on comp_prices (comp);
      insert into stocks values ('s1', 30.0), ('s2', 40.0), ('s3', 50.0);
      insert into comps_list values
        ('c1', 's1', 0.5), ('c1', 's3', 0.5),
        ('c2', 's1', 0.3), ('c2', 's2', 0.7);
      insert into comp_prices values ('c1', 40.0), ('c2', 37.0);
    )"));
    ASSERT_OK(RegisterPtaFunctions(db_));
    // compute_comps* read stock_stdev-free tables; option tables are not
    // needed for the composite example, but the functions resolve
    // comp_prices/option_prices/stock_stdev lazily — create stubs.
    ASSERT_OK(db_.ExecuteScript(R"(
      create table option_prices (option_symbol string, price double);
      create index on option_prices (option_symbol);
      create table stock_stdev (symbol string, stdev double);
      create index on stock_stdev (symbol);
    )"));
  }

  /// Runs T1 (S1 -> 31, S2 -> 39) and T2 (S2 -> 38, S3 -> 51) as two
  /// transactions, as in Figure 4.
  void RunT1T2() {
    auto t1 = db_.Begin();
    ASSERT_OK(t1.status());
    ASSERT_OK(db_.ExecuteInTxn(*t1,
                               "update stocks set price = 31.0 "
                               "where symbol = 's1'")
                  .status());
    ASSERT_OK(db_.ExecuteInTxn(*t1,
                               "update stocks set price = 39.0 "
                               "where symbol = 's2'")
                  .status());
    ASSERT_OK(db_.Commit(*t1));

    auto t2 = db_.Begin();
    ASSERT_OK(t2.status());
    ASSERT_OK(db_.ExecuteInTxn(*t2,
                               "update stocks set price = 38.0 "
                               "where symbol = 's2'")
                  .status());
    ASSERT_OK(db_.ExecuteInTxn(*t2,
                               "update stocks set price = 51.0 "
                               "where symbol = 's3'")
                  .status());
    ASSERT_OK(db_.Commit(*t2));
  }

  double CompPrice(const std::string& comp) {
    auto rs = db_.Execute("select price from comp_prices where comp = '" +
                          comp + "'");
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->num_rows(), 1u);
    return rs->rows[0][0].as_double();
  }

  uint64_t RecomputesRun() {
    return db_.executor().stats().tasks_run - updates_run_;
  }

  Database db_;
  uint64_t updates_run_ = 0;  // updates run via ExecuteInTxn, not tasks
};

// Expected final composite prices after T1 + T2:
//   s1 = 31, s2 = 38, s3 = 51
//   c1 = 0.5 * 31 + 0.5 * 51 = 41.0
//   c2 = 0.3 * 31 + 0.7 * 38 = 35.9
constexpr double kC1Final = 41.0;
constexpr double kC2Final = 35.9;

TEST_F(PaperExampleTest, NonUniqueRuleRunsOneTaskPerTriggeringTxn) {
  ASSERT_OK(
      db_.Execute(CompRuleSql(CompRuleVariant::kNonUnique, 0)).status());
  RunT1T2();
  db_.simulated()->RunUntilQuiescent();
  EXPECT_NEAR(CompPrice("c1"), kC1Final, 1e-9);
  EXPECT_NEAR(CompPrice("c2"), kC2Final, 1e-9);
  // Figure 5(a): two distinct transactions T1a and T2a remain enqueued.
  EXPECT_EQ(db_.rules().stats().tasks_created, 2u);
  EXPECT_EQ(db_.executor().stats().tasks_run, 2u);
}

TEST_F(PaperExampleTest, CoarseUniqueBatchesAcrossTransactions) {
  ASSERT_OK(db_.Execute(CompRuleSql(CompRuleVariant::kUnique, 1.0)).status());
  RunT1T2();  // both commit at virtual time 0, within the 1 s window
  db_.simulated()->RunUntilQuiescent();
  EXPECT_NEAR(CompPrice("c1"), kC1Final, 1e-9);
  EXPECT_NEAR(CompPrice("c2"), kC2Final, 1e-9);
  // Figure 5(b): T2's firing was appended to T1a's bound table.
  EXPECT_EQ(db_.rules().stats().tasks_created, 1u);
  EXPECT_EQ(db_.rules().stats().firings_merged, 1u);
  EXPECT_EQ(db_.executor().stats().tasks_run, 1u);
}

TEST_F(PaperExampleTest, UniqueOnCompPartitionsPerComposite) {
  ASSERT_OK(
      db_.Execute(CompRuleSql(CompRuleVariant::kUniqueOnComp, 1.0)).status());
  RunT1T2();
  db_.simulated()->RunUntilQuiescent();
  EXPECT_NEAR(CompPrice("c1"), kC1Final, 1e-9);
  EXPECT_NEAR(CompPrice("c2"), kC2Final, 1e-9);
  // Figure 5(c): one queued transaction per composite; T2's rows merged
  // into them (T2 touches c1 via s3 and c2 via s2).
  EXPECT_EQ(db_.rules().stats().tasks_created, 2u);
  EXPECT_EQ(db_.rules().stats().firings_merged, 2u);
  EXPECT_EQ(db_.executor().stats().tasks_run, 2u);
}

TEST_F(PaperExampleTest, DelayWindowSplitsBatches) {
  ASSERT_OK(db_.Execute(CompRuleSql(CompRuleVariant::kUnique, 1.0)).status());
  // T1 at t = 0.
  auto t1 = db_.Begin();
  ASSERT_OK(t1.status());
  ASSERT_OK(db_.ExecuteInTxn(*t1,
                             "update stocks set price = 31.0 "
                             "where symbol = 's1'")
                .status());
  ASSERT_OK(db_.Commit(*t1));
  // Advance virtual time past the 1 s delay window; the queued task runs.
  db_.simulated()->RunUntil(SecondsToMicros(2.0));
  EXPECT_EQ(db_.executor().stats().tasks_run, 1u);
  // T2 at t = 2: a NEW task must be created (the previous one started).
  auto t2 = db_.Begin();
  ASSERT_OK(t2.status());
  ASSERT_OK(db_.ExecuteInTxn(*t2,
                             "update stocks set price = 51.0 "
                             "where symbol = 's3'")
                .status());
  ASSERT_OK(db_.Commit(*t2));
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(db_.rules().stats().tasks_created, 2u);
  EXPECT_EQ(db_.rules().stats().firings_merged, 0u);
  EXPECT_NEAR(CompPrice("c1"), 0.5 * 31 + 0.5 * 51, 1e-9);
}

TEST_F(PaperExampleTest, IntraTransactionMultipleChangesUseExecuteOrder) {
  ASSERT_OK(
      db_.Execute(CompRuleSql(CompRuleVariant::kNonUnique, 0)).status());
  // One transaction changing the same stock twice: the condition query
  // pairs old/new images via execute_order, so both deltas apply.
  auto txn = db_.Begin();
  ASSERT_OK(txn.status());
  ASSERT_OK(db_.ExecuteInTxn(*txn,
                             "update stocks set price = 32.0 "
                             "where symbol = 's1'")
                .status());
  ASSERT_OK(db_.ExecuteInTxn(*txn,
                             "update stocks set price = 29.0 "
                             "where symbol = 's1'")
                .status());
  ASSERT_OK(db_.Commit(*txn));
  db_.simulated()->RunUntilQuiescent();
  // c1 = 40 + 0.5 * ((32-30) + (29-32)) = 39.5
  EXPECT_NEAR(CompPrice("c1"), 39.5, 1e-9);
  // c2 = 37 + 0.3 * ((32-30) + (29-32)) = 36.7
  EXPECT_NEAR(CompPrice("c2"), 36.7, 1e-9);
}

}  // namespace
}  // namespace strip
