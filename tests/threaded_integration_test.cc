// End-to-end rule-system tests on the THREADED executor: real worker
// threads, wall-clock delay windows, concurrent update transactions with
// wait-die retries, unique-transaction batching under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "strip/engine/database.h"
#include "strip/market/pta_runner.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Database::Options Threaded(int workers) {
  Database::Options o;
  o.mode = ExecutorMode::kThreaded;
  o.num_workers = workers;
  return o;
}

TEST(ThreadedIntegrationTest, BatchedRuleMaintainsTotals) {
  Database db(Threaded(2));
  ASSERT_OK(db.ExecuteScript(R"(
    create table accounts (id int, branch string, balance double);
    create index on accounts (id);
    create table totals (branch string, total double);
    insert into accounts values
      (1, 'n', 10.0), (2, 'n', 20.0), (3, 's', 30.0);
    insert into totals values ('n', 30.0), ('s', 30.0);
  )"));
  ASSERT_OK(db.RegisterFunction("fold", [](FunctionContext& ctx) -> Status {
    const TempTable* d = ctx.BoundTable("delta");
    if (d->size() == 0) return Status::OK();
    double change = 0;
    for (size_t i = 0; i < d->size(); ++i) {
      change += d->Get(i, 2).as_double() - d->Get(i, 1).as_double();
    }
    return ctx.Exec("update totals set total += " + std::to_string(change) +
                    " where branch = '" + d->Get(0, 0).as_string() + "'")
        .status();
  }));
  ASSERT_OK(db.Execute(R"(
    create rule r on accounts when updated balance
    if select new.branch as branch, old.balance as ob, new.balance as nb
       from new, old where new.execute_order = old.execute_order
       bind as delta
    then execute fold unique on branch after 0.03 seconds
  )").status());

  // Concurrent updaters hammer the accounts; wait-die aborts are retried.
  std::atomic<int> applied{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&db, &applied, w] {
      for (int i = 0; i < 20; ++i) {
        int id = 1 + (w + i) % 3;
        for (;;) {
          auto r = db.Execute("update accounts set balance += 1.0 "
                              "where id = " + std::to_string(id));
          if (r.ok()) break;
          ASSERT_EQ(r.status().code(), StatusCode::kAborted)
              << r.status().ToString();
          std::this_thread::yield();
        }
        ++applied;
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(applied.load(), 60);
  // Wait out the delay window and drain the recompute tasks (they may
  // cascade, so drain until quiescent).
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  db.threaded()->Drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  db.threaded()->Drain();

  // 60 updates of +1 split across branches: n got updates to ids 1,2;
  // s to id 3. Totals must equal a from-scratch recompute.
  auto maintained = db.Execute("select branch, total from totals "
                               "order by branch");
  auto fresh = db.Execute(
      "select branch, sum(balance) as total from accounts group by branch "
      "order by branch");
  ASSERT_OK(maintained.status());
  ASSERT_OK(fresh.status());
  ASSERT_EQ(maintained->num_rows(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(maintained->rows[i][1].as_double(),
                fresh->rows[i][1].as_double(), 1e-9);
  }
  // Batching happened: far fewer recompute tasks than updates.
  EXPECT_LT(db.rules().stats().tasks_created, 60u);
  EXPECT_GT(db.rules().stats().firings_merged, 0u);
}

TEST(ThreadedIntegrationTest, ActionRetriesAfterWaitDieAbort) {
  // A rule action that conflicts with a long-running older transaction
  // must retry (fresh, younger transaction each time) and eventually
  // succeed.
  Database db(Threaded(2));
  ASSERT_OK(db.ExecuteScript(R"(
    create table src (v int);
    create table dst (v int);
  )"));
  std::atomic<int> attempts{0};
  ASSERT_OK(db.RegisterFunction("copy", [&](FunctionContext& ctx) -> Status {
    ++attempts;
    return ctx.Exec("insert into dst values (1)").status();
  }));
  ASSERT_OK(db.Execute(
      "create rule r on src when inserted then execute copy").status());

  // An older transaction holds X on dst while the action fires.
  ASSERT_OK_AND_ASSIGN(Transaction * blocker, db.Begin());
  ASSERT_OK(db.ExecuteInTxn(blocker, "insert into dst values (0)").status());

  ASSERT_OK(db.Execute("insert into src values (7)").status());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Release the blocker; the retried action can now commit.
  ASSERT_OK(db.Commit(blocker));
  db.threaded()->Drain();

  auto rs = db.Execute("select count(*) as n from dst");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(2));  // blocker's row + action's row
  EXPECT_GE(attempts.load(), 1);
}

TEST(ThreadedIntegrationTest, DelayWindowObservedOnWallClock) {
  Database db(Threaded(1));
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (v int);
    create table marks (at int);
  )"));
  ASSERT_OK(db.RegisterFunction("mark", [&db](FunctionContext& ctx) {
    return ctx.Exec("insert into marks values (" +
                    std::to_string(db.Now()) + ")")
        .status();
  }));
  ASSERT_OK(db.Execute(
      "create rule r on t when inserted then execute mark unique "
      "after 0.08 seconds").status());
  Timestamp before = db.Now();
  ASSERT_OK(db.Execute("insert into t values (1)").status());
  db.threaded()->Drain();
  auto rs = db.Execute("select at from marks");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_GE(rs->rows[0][0].as_int() - before, SecondsToMicros(0.07));
}

TEST(ThreadedIntegrationTest, ThreadedPtaHarnessRuns) {
  // Smoke test of the scale-up benchmark harness at a tiny scale: every
  // composite fires exactly once (merging is deterministic because the
  // delay window outlasts the burst), no task fails, and the lock /
  // executor counters add up.
  ThreadedPtaOptions opts;
  opts.num_workers = 2;
  opts.scale = 0.005;  // 8 composites (the floor), ~300 updates
  opts.delay_seconds = 1.0;
  opts.order_latency_micros = 0;  // no stall: keep the test fast
  auto r = RunThreadedPta(opts);
  ASSERT_OK(r.status());
  EXPECT_EQ(r->num_workers, 2);
  EXPECT_GT(r->num_updates, 0u);
  EXPECT_EQ(r->num_firings, 8u);  // one per composite
  EXPECT_EQ(r->failed_tasks, 0u);
  EXPECT_EQ(r->tasks_failed, 0u);
  EXPECT_GT(r->firings_merged, 0u);
  EXPECT_GT(r->firings_per_second, 0.0);
  EXPECT_GT(r->p99_firing_latency_micros, 0.0);
  EXPECT_GE(r->p99_firing_latency_micros, r->p50_firing_latency_micros);
  EXPECT_GT(r->lock_acquires, 0u);
  // Every submitted task ran: updates + firings (merged firings never
  // became tasks).
  EXPECT_EQ(r->tasks_run, r->num_updates + r->num_firings);
}

}  // namespace
}  // namespace strip
