// Import/export system tests (Figure 15, [AKGM96b]): keyed upsert import
// streams and rule-driven batched export streams.

#include <gtest/gtest.h>

#include "strip/feed/feed.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Database::Options LogicalTime() {
  Database::Options o;
  o.mode = ExecutorMode::kSimulated;
  o.advance_clock_by_cost = false;
  return o;
}

class FeedTest : public ::testing::Test {
 protected:
  FeedTest() : db_(LogicalTime()) {}

  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      create table quotes (symbol string, price double);
      create index on quotes (symbol);
    )"));
  }

  Database db_;
};

TEST_F(FeedTest, UpsertInsertsThenUpdates) {
  ASSERT_OK_AND_ASSIGN(auto importer, FeedImporter::Create(&db_, "quotes"));
  ASSERT_OK(importer->Submit(
      FeedRecord{100, {Value::Str("ibm"), Value::Double(50.0)}}));
  ASSERT_OK(importer->Submit(
      FeedRecord{200, {Value::Str("ibm"), Value::Double(51.0)}}));
  ASSERT_OK(importer->Submit(
      FeedRecord{300, {Value::Str("hp"), Value::Double(20.0)}}));
  db_.simulated()->RunUntilQuiescent();

  EXPECT_EQ(importer->records_submitted(), 3u);
  EXPECT_EQ(importer->records_applied(), 3u);
  EXPECT_EQ(importer->records_failed(), 0u);
  auto rs = db_.Execute("select symbol, price from quotes order by symbol");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 2u);  // upsert, not append
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 51.0);
}

TEST_F(FeedTest, RecordsReleaseAtFeedTimestamps) {
  ASSERT_OK_AND_ASSIGN(auto importer, FeedImporter::Create(&db_, "quotes"));
  ASSERT_OK(importer->Submit(FeedRecord{
      SecondsToMicros(5), {Value::Str("ibm"), Value::Double(50.0)}}));
  db_.simulated()->RunUntil(SecondsToMicros(2));
  auto rs = db_.Execute("select count(*) as n from quotes");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(0));  // not yet released
  db_.simulated()->RunUntil(SecondsToMicros(6));
  rs = db_.Execute("select count(*) as n from quotes");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(1));
}

TEST_F(FeedTest, ImportedUpdatesFireRules) {
  // The whole point: imported changes are ordinary transactions, so rules
  // batch them like any other update source.
  ASSERT_OK(db_.ExecuteScript("create table audit (n int)"));
  ASSERT_OK(db_.RegisterFunction("count_batch", [](FunctionContext& ctx) {
    const TempTable* d = ctx.BoundTable("d");
    return ctx.Exec("insert into audit values (" +
                    std::to_string(d->size()) + ")")
        .status();
  }));
  ASSERT_OK(db_.Execute(R"(
    create rule r on quotes when updated price
    if select new.symbol as symbol from new bind as d
    then execute count_batch unique after 1.0 seconds
  )").status());

  ASSERT_OK_AND_ASSIGN(auto importer, FeedImporter::Create(&db_, "quotes"));
  ASSERT_OK(importer->Submit(
      FeedRecord{0, {Value::Str("ibm"), Value::Double(50.0)}}));  // insert
  for (int i = 1; i <= 4; ++i) {
    ASSERT_OK(importer->Submit(FeedRecord{
        i * 100'000, {Value::Str("ibm"), Value::Double(50.0 + i)}}));
  }
  db_.simulated()->RunUntilQuiescent();
  auto rs = db_.Execute("select n from audit");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 1u);       // one batched recompute
  EXPECT_EQ(rs->rows[0][0], Value::Int(4));  // all four updates in it
}

TEST_F(FeedTest, ImporterValidation) {
  ASSERT_OK(db_.ExecuteScript(
      "create table unindexed (k string, v int); "
      "create table narrow (k string); create index on narrow (k)"));
  EXPECT_EQ(FeedImporter::Create(&db_, "nosuch").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(FeedImporter::Create(&db_, "unindexed").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(FeedImporter::Create(&db_, "narrow").status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_OK_AND_ASSIGN(auto importer, FeedImporter::Create(&db_, "quotes"));
  EXPECT_EQ(importer->Submit(FeedRecord{0, {Value::Str("x")}}).code(),
            StatusCode::kInvalidArgument);  // arity
}

TEST_F(FeedTest, ExporterDeliversBatchedChanges) {
  std::vector<ExportBatch> batches;
  ASSERT_OK_AND_ASSIGN(
      auto exporter,
      TableExporter::Create(&db_, "quotes", 1.0,
                            [&](const ExportBatch& b) {
                              batches.push_back(b);
                            }));
  // One insert and two updates of the same row within the window.
  ASSERT_OK(db_.Execute(
      "insert into quotes values ('ibm', 50.0)").status());
  ASSERT_OK(db_.Execute(
      "update quotes set price = 51.0 where symbol = 'ibm'").status());
  ASSERT_OK(db_.Execute(
      "update quotes set price = 52.0 where symbol = 'ibm'").status());
  db_.simulated()->RunUntilQuiescent();

  ASSERT_EQ(batches.size(), 1u);  // batched into one delivery
  EXPECT_EQ(exporter->batches_delivered(), 1u);
  EXPECT_EQ(batches[0].inserted.size(), 1u);
  EXPECT_EQ(batches[0].updated_new.size(), 2u);  // full audit trail (§2)
  EXPECT_TRUE(batches[0].deleted.empty());
  EXPECT_DOUBLE_EQ(batches[0].updated_new[1][1].as_double(), 52.0);
}

TEST_F(FeedTest, ExporterSeesDeletes) {
  std::vector<ExportBatch> batches;
  ASSERT_OK(db_.Execute("insert into quotes values ('ibm', 1.0)").status());
  ASSERT_OK_AND_ASSIGN(
      auto exporter,
      TableExporter::Create(&db_, "quotes", 0.0,
                            [&](const ExportBatch& b) {
                              batches.push_back(b);
                            }));
  ASSERT_OK(db_.Execute("delete from quotes where symbol = 'ibm'").status());
  db_.simulated()->RunUntilQuiescent();
  ASSERT_EQ(batches.size(), 1u);
  ASSERT_EQ(batches[0].deleted.size(), 1u);
  EXPECT_EQ(batches[0].deleted[0][0], Value::Str("ibm"));
}

TEST_F(FeedTest, ExporterStopsOnDestruction) {
  {
    ASSERT_OK_AND_ASSIGN(
        auto exporter,
        TableExporter::Create(&db_, "quotes", 0.0, [](const ExportBatch&) {
          FAIL() << "should not deliver after destruction";
        }));
    // Destroyed before any change happens.
  }
  ASSERT_OK(db_.Execute("insert into quotes values ('ibm', 1.0)").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(db_.rules().FindRule("export_quotes"), nullptr);
}

TEST_F(FeedTest, EndToEndImportExport) {
  std::vector<ExportBatch> batches;
  ASSERT_OK_AND_ASSIGN(
      auto exporter,
      TableExporter::Create(&db_, "quotes", 0.5,
                            [&](const ExportBatch& b) {
                              batches.push_back(b);
                            }));
  ASSERT_OK_AND_ASSIGN(auto importer, FeedImporter::Create(&db_, "quotes"));
  std::vector<FeedRecord> stream;
  for (int i = 0; i < 10; ++i) {
    stream.push_back(FeedRecord{
        i * 100'000,
        {Value::Str("s" + std::to_string(i % 2)), Value::Double(i)}});
  }
  ASSERT_OK(importer->SubmitAll(stream));
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(importer->records_applied(), 10u);
  size_t total = 0;
  for (const auto& b : batches) {
    total += b.inserted.size() + b.updated_new.size() + b.deleted.size();
  }
  EXPECT_EQ(total, 10u);            // nothing lost, nothing duplicated
  EXPECT_LT(batches.size(), 10u);   // and genuinely batched
}

}  // namespace
}  // namespace strip
