// Property tests for the from-scratch red-black tree (§6.1's tree index):
// randomized insert/erase sequences checked against a reference
// std::multimap, with the red-black invariants verified after every batch.

#include <gtest/gtest.h>

#include <map>

#include "strip/common/rng.h"
#include "strip/storage/rbtree.h"
#include "strip/storage/table.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", ValueType::kInt);
  return s;
}

/// Harness pairing the tree with a reference multimap. Rows come from a
/// backing table so RowHandles are real.
class Harness {
 public:
  Harness() : table_("t", KV()) {}

  RowHandle NewRow(int64_t tag) {
    auto r = table_.Insert(MakeRecord({Value::Int(tag)}));
    EXPECT_TRUE(r.ok());
    return *r;
  }

  void Insert(int64_t key) {
    RowHandle row = NewRow(key);
    tree_.Insert(Value::Int(key), row);
    ref_.emplace(key, row);
  }

  bool EraseOne(int64_t key) {
    auto it = ref_.find(key);
    if (it == ref_.end()) {
      EXPECT_FALSE(tree_.Erase(Value::Int(key), RowHandle{}));
      return false;
    }
    EXPECT_TRUE(tree_.Erase(Value::Int(key), it->second));
    ref_.erase(it);
    return true;
  }

  void CheckAgainstReference() {
    ASSERT_OK(tree_.CheckInvariants());
    ASSERT_EQ(tree_.size(), ref_.size());
    // Full in-order traversal matches the reference key sequence.
    std::vector<int64_t> tree_keys;
    tree_.ForEach([&](const Value& k, RowHandle) {
      tree_keys.push_back(k.as_int());
    });
    std::vector<int64_t> ref_keys;
    for (const auto& [k, v] : ref_) ref_keys.push_back(k);
    ASSERT_EQ(tree_keys, ref_keys);
  }

  void CheckLookups(int64_t lo, int64_t hi) {
    for (int64_t k = lo; k <= hi; ++k) {
      std::vector<RowHandle> got;
      tree_.LookupEqual(Value::Int(k), got);
      ASSERT_EQ(got.size(), ref_.count(k)) << "key " << k;
    }
    std::vector<RowHandle> range;
    tree_.LookupRange(Value::Int(lo), Value::Int(hi), range);
    size_t expected = 0;
    for (const auto& [k, v] : ref_) {
      if (k >= lo && k <= hi) ++expected;
    }
    ASSERT_EQ(range.size(), expected);
  }

  RbTreeMap tree_;
  std::multimap<int64_t, RowHandle> ref_;
  Table table_;
};

TEST(RbTreeTest, EmptyTree) {
  RbTreeMap t;
  EXPECT_TRUE(t.empty());
  ASSERT_OK(t.CheckInvariants());
  std::vector<RowHandle> out;
  t.LookupEqual(Value::Int(1), out);
  EXPECT_TRUE(out.empty());
  t.LookupRange(Value::Int(0), Value::Int(10), out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(t.Erase(Value::Int(1), RowHandle{}));
}

TEST(RbTreeTest, AscendingInsertStaysBalanced) {
  Harness h;
  for (int64_t i = 0; i < 1000; ++i) h.Insert(i);
  h.CheckAgainstReference();
  h.CheckLookups(0, 50);
}

TEST(RbTreeTest, DescendingInsertStaysBalanced) {
  Harness h;
  for (int64_t i = 1000; i > 0; --i) h.Insert(i);
  h.CheckAgainstReference();
}

TEST(RbTreeTest, DuplicateKeysPreserved) {
  Harness h;
  for (int round = 0; round < 5; ++round) {
    for (int64_t k = 0; k < 20; ++k) h.Insert(k);
  }
  h.CheckAgainstReference();
  std::vector<RowHandle> out;
  h.tree_.LookupEqual(Value::Int(7), out);
  EXPECT_EQ(out.size(), 5u);
  // Erase duplicates one at a time.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(h.EraseOne(7));
  EXPECT_FALSE(h.EraseOne(7));
  h.CheckAgainstReference();
}

TEST(RbTreeTest, EraseToEmpty) {
  Harness h;
  for (int64_t i = 0; i < 300; ++i) h.Insert(i % 37);
  while (!h.ref_.empty()) {
    h.EraseOne(h.ref_.begin()->first);
  }
  EXPECT_TRUE(h.tree_.empty());
  ASSERT_OK(h.tree_.CheckInvariants());
}

TEST(RbTreeTest, MixedValueTypesOrdered) {
  RbTreeMap t;
  Table table("t", KV());
  auto row = table.Insert(MakeRecord({Value::Int(0)}));
  ASSERT_OK(row.status());
  t.Insert(Value::Double(2.5), *row);
  t.Insert(Value::Int(2), *row);
  t.Insert(Value::Int(3), *row);
  ASSERT_OK(t.CheckInvariants());
  std::vector<RowHandle> out;
  t.LookupRange(Value::Int(2), Value::Int(3), out);
  EXPECT_EQ(out.size(), 3u);  // 2 <= 2.5 <= 3
}

/// Randomized sweep across seeds and workload mixes.
class RbTreeRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RbTreeRandomTest, MatchesReferenceUnderRandomOps) {
  int seed = std::get<0>(GetParam());
  int erase_percent = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(seed));
  Harness h;
  for (int batch = 0; batch < 20; ++batch) {
    for (int i = 0; i < 200; ++i) {
      int64_t key = rng.UniformInt(0, 99);
      if (rng.UniformInt(0, 99) < erase_percent) {
        h.EraseOne(key);
      } else {
        h.Insert(key);
      }
    }
    ASSERT_OK(h.tree_.CheckInvariants());
    ASSERT_EQ(h.tree_.size(), h.ref_.size());
  }
  h.CheckAgainstReference();
  h.CheckLookups(0, 99);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RbTreeRandomTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5,
                                                              6, 7, 8),
                                            ::testing::Values(20, 50, 70)));

}  // namespace
}  // namespace strip
