// Rule engine semantics tests: rule DDL validation, event detection,
// transition tables (no net-effect reduction, execute_order), condition
// evaluation, the evaluate clause, bound-table construction, commit_time,
// cascading rules, shared user functions, de/re-activation.

#include <gtest/gtest.h>

#include "strip/engine/database.h"
#include "tests/test_util.h"

namespace strip {
namespace {

/// Logical-time database plus a "spy" user function that materializes what
/// it sees into an audit table.
class RulesEngineTest : public ::testing::Test {
 protected:
  RulesEngineTest() : db_(MakeOptions()) {}

  static Database::Options MakeOptions() {
    Database::Options o;
    o.mode = ExecutorMode::kSimulated;
    o.advance_clock_by_cost = false;
    return o;
  }

  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      create table t (k string, v int);
      create table audit (what string, k string, v int, seq int);
    )"));
    // `spy` copies its bound table `seen` into audit.
    ASSERT_OK(db_.RegisterFunction("spy", [this](FunctionContext& ctx) {
      return CopyBound(ctx, "seen");
    }));
  }

  static Status CopyBound(FunctionContext& ctx, const std::string& name) {
    const TempTable* seen = ctx.BoundTable(name);
    if (seen == nullptr) return Status::NotFound("no bound table");
    for (size_t i = 0; i < seen->size(); ++i) {
      std::vector<Value> row = seen->MaterializeRow(i);
      std::string sql = "insert into audit values ('" +
                        row[0].as_string() + "', '" + row[1].as_string() +
                        "', " + row[2].ToString() + ", " +
                        row[3].ToString() + ")";
      STRIP_RETURN_IF_ERROR(ctx.Exec(sql).status());
    }
    return Status::OK();
  }

  ResultSet Audit() {
    auto rs = db_.Execute("select what, k, v, seq from audit order by seq");
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return rs.ok() ? rs.take() : ResultSet{};
  }

  Database db_;
};

TEST_F(RulesEngineTest, InsertEventBuildsInsertedTable) {
  ASSERT_OK(db_.Execute(R"(
    create rule r on t when inserted
    if select 'ins' as what, k, v, execute_order as seq from inserted
       bind as seen
    then execute spy
  )").status());
  ASSERT_OK(db_.Execute("insert into t values ('a', 1), ('b', 2)").status());
  db_.simulated()->RunUntilQuiescent();
  ResultSet a = Audit();
  ASSERT_EQ(a.num_rows(), 2u);
  EXPECT_EQ(a.rows[0][1], Value::Str("a"));
  EXPECT_EQ(a.rows[0][3], Value::Int(1));  // execute_order
  EXPECT_EQ(a.rows[1][3], Value::Int(2));
}

TEST_F(RulesEngineTest, DeleteEventBuildsDeletedTable) {
  ASSERT_OK(db_.Execute("insert into t values ('a', 1), ('b', 2)").status());
  ASSERT_OK(db_.Execute(R"(
    create rule r on t when deleted
    if select 'del' as what, k, v, execute_order as seq from deleted
       bind as seen
    then execute spy
  )").status());
  ASSERT_OK(db_.Execute("delete from t where k = 'a'").status());
  db_.simulated()->RunUntilQuiescent();
  ResultSet a = Audit();
  ASSERT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.rows[0][0], Value::Str("del"));
  EXPECT_EQ(a.rows[0][1], Value::Str("a"));
}

TEST_F(RulesEngineTest, UpdatedColumnFilterSuppressesOtherColumns) {
  ASSERT_OK(db_.Execute("insert into t values ('a', 1)").status());
  ASSERT_OK(db_.Execute(R"(
    create rule r on t when updated v
    if select 'upd' as what, new.k as k, new.v as v,
              new.execute_order as seq from new
       bind as seen
    then execute spy
  )").status());
  // Update that does NOT change v: rule must not fire.
  ASSERT_OK(db_.Execute("update t set k = 'z' where k = 'a'").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(Audit().num_rows(), 0u);
  // Update that changes v: fires.
  ASSERT_OK(db_.Execute("update t set v = 7 where k = 'z'").status());
  db_.simulated()->RunUntilQuiescent();
  ASSERT_EQ(Audit().num_rows(), 1u);
  EXPECT_EQ(Audit().rows[0][2], Value::Int(7));
}

TEST_F(RulesEngineTest, NoNetEffectReduction) {
  // A tuple inserted and deleted within one transaction appears in BOTH
  // transition tables (§2).
  ASSERT_OK(db_.Execute(R"(
    create rule r on t when inserted deleted
    if select 'ins' as what, k, v, execute_order as seq from inserted
         bind as seen,
       select 'del' as what, k, v, execute_order as seq from deleted
         bind as seen2
    then execute spy2
  )").status());
  ASSERT_OK(db_.RegisterFunction("spy2", [](FunctionContext& ctx) -> Status {
    STRIP_RETURN_IF_ERROR(CopyBound(ctx, "seen"));
    return CopyBound(ctx, "seen2");
  }));
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db_.Begin());
  ASSERT_OK(db_.ExecuteInTxn(txn, "insert into t values ('x', 1)").status());
  ASSERT_OK(db_.ExecuteInTxn(txn, "delete from t where k = 'x'").status());
  ASSERT_OK(db_.Commit(txn));
  db_.simulated()->RunUntilQuiescent();
  ResultSet a = Audit();
  ASSERT_EQ(a.num_rows(), 2u);
  EXPECT_EQ(a.rows[0][0], Value::Str("ins"));
  EXPECT_EQ(a.rows[0][3], Value::Int(1));
  EXPECT_EQ(a.rows[1][0], Value::Str("del"));
  EXPECT_EQ(a.rows[1][3], Value::Int(2));
}

TEST_F(RulesEngineTest, ConditionFalseSuppressesAction) {
  ASSERT_OK(db_.Execute(R"(
    create rule r on t when inserted
    if select 'i' as what, k, v, execute_order as seq from inserted
         where v > 100
       bind as seen
    then execute spy
  )").status());
  ASSERT_OK(db_.Execute("insert into t values ('small', 5)").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(Audit().num_rows(), 0u);
  EXPECT_EQ(db_.rules().stats().rules_triggered, 1u);
  EXPECT_EQ(db_.rules().stats().conditions_true, 0u);
  ASSERT_OK(db_.Execute("insert into t values ('big', 500)").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(Audit().num_rows(), 1u);
}

TEST_F(RulesEngineTest, AllConditionQueriesMustReturnRows) {
  // Condition = conjunction: every query needs >= 1 row (§2).
  ASSERT_OK(db_.ExecuteScript("create table gate (open int)"));
  ASSERT_OK(db_.Execute(R"(
    create rule r on t when inserted
    if select 'i' as what, k, v, execute_order as seq from inserted
         bind as seen,
       select open from gate where open = 1
    then execute spy
  )").status());
  ASSERT_OK(db_.Execute("insert into t values ('a', 1)").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(Audit().num_rows(), 0u);  // gate closed
  ASSERT_OK(db_.Execute("insert into gate values (1)").status());
  ASSERT_OK(db_.Execute("insert into t values ('b', 2)").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(Audit().num_rows(), 1u);
}

TEST_F(RulesEngineTest, EvaluateClauseBindsExtraData) {
  // The evaluate clause passes data without affecting the condition (§2).
  ASSERT_OK(db_.ExecuteScript(
      "create table extra (k string, v int); "
      "insert into extra values ('e', 42)"));
  ASSERT_OK(db_.Execute(R"(
    create rule r on t when inserted
    then
      evaluate select 'x' as what, k, v, 0 as seq from extra bind as seen
      execute spy
  )").status());
  ASSERT_OK(db_.Execute("insert into t values ('a', 1)").status());
  db_.simulated()->RunUntilQuiescent();
  ResultSet a = Audit();
  ASSERT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.rows[0][1], Value::Str("e"));
  EXPECT_EQ(a.rows[0][2], Value::Int(42));
}

TEST_F(RulesEngineTest, CommitTimePseudoColumn) {
  db_.simulated()->clock().AdvanceTo(SecondsToMicros(5));
  ASSERT_OK(db_.Execute(R"(
    create rule r on t when inserted
    if select 'ct' as what, k, v, commit_time as seq from inserted
       bind as seen
    then execute spy
  )").status());
  ASSERT_OK(db_.Execute("insert into t values ('a', 1)").status());
  db_.simulated()->RunUntilQuiescent();
  ResultSet a = Audit();
  ASSERT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.rows[0][3], Value::Int(SecondsToMicros(5)));
}

TEST_F(RulesEngineTest, CascadingRules) {
  // The action's own transaction triggers further rules (its commit is
  // event-checked like any other).
  ASSERT_OK(db_.ExecuteScript("create table l2 (k string)"));
  ASSERT_OK(db_.RegisterFunction("promote", [](FunctionContext& ctx) {
    return ctx.Exec("insert into l2 values ('cascaded')").status();
  }));
  ASSERT_OK(db_.Execute(
      "create rule r1 on t when inserted then execute promote").status());
  ASSERT_OK(db_.Execute(R"(
    create rule r2 on l2 when inserted
    if select 'l2' as what, k, k as v, execute_order as seq from inserted
       bind as seen
    then execute spy_l2
  )").status());
  ASSERT_OK(db_.RegisterFunction("spy_l2", [](FunctionContext& ctx) -> Status {
    const TempTable* seen = ctx.BoundTable("seen");
    return ctx.Exec("insert into audit values ('l2', '" +
                    seen->Get(0, 1).as_string() + "', 0, 9)")
        .status();
  }));
  ASSERT_OK(db_.Execute("insert into t values ('a', 1)").status());
  db_.simulated()->RunUntilQuiescent();
  ResultSet a = Audit();
  ASSERT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.rows[0][1], Value::Str("cascaded"));
}

TEST_F(RulesEngineTest, DeactivatedRuleDoesNotFire) {
  ASSERT_OK(db_.Execute(R"(
    create rule r on t when inserted
    if select 'i' as what, k, v, execute_order as seq from inserted
       bind as seen
    then execute spy
  )").status());
  ASSERT_OK(db_.rules().SetRuleEnabled("r", false));
  ASSERT_OK(db_.Execute("insert into t values ('a', 1)").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(Audit().num_rows(), 0u);
  ASSERT_OK(db_.rules().SetRuleEnabled("r", true));
  ASSERT_OK(db_.Execute("insert into t values ('b', 2)").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(Audit().num_rows(), 1u);
}

TEST_F(RulesEngineTest, DropRuleStopsFiring) {
  ASSERT_OK(db_.Execute(
      "create rule r on t when inserted then execute spy").status());
  ASSERT_OK(db_.Execute("drop rule r").status());
  EXPECT_EQ(db_.rules().FindRule("r"), nullptr);
  ASSERT_OK(db_.Execute("insert into t values ('a', 1)").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(db_.rules().stats().rules_triggered, 0u);
}

// --- validation ------------------------------------------------------------

TEST_F(RulesEngineTest, ValidationRejectsBadRules) {
  // Unknown table.
  EXPECT_EQ(db_.Execute("create rule r on nosuch when inserted "
                        "then execute f").status().code(),
            StatusCode::kNotFound);
  // Unknown updated column.
  EXPECT_EQ(db_.Execute("create rule r on t when updated nope "
                        "then execute f").status().code(),
            StatusCode::kNotFound);
  // Bound name colliding with a catalog table (§2: names chosen for bound
  // tables should not be used elsewhere).
  EXPECT_EQ(db_.Execute("create rule r on t when inserted "
                        "if select k from inserted bind as audit "
                        "then execute f").status().code(),
            StatusCode::kAlreadyExists);
  // Reserved transition-table name as bind target.
  EXPECT_EQ(db_.Execute("create rule r on t when inserted "
                        "if select k from inserted bind as new "
                        "then execute f").status().code(),
            StatusCode::kInvalidArgument);
  // unique on without any bound table.
  EXPECT_EQ(db_.Execute("create rule r on t when inserted "
                        "then execute f unique on k after 1 seconds")
                .status().code(),
            StatusCode::kInvalidArgument);
  // unique column not produced by any bound query.
  EXPECT_EQ(db_.Execute("create rule r on t when inserted "
                        "if select k from inserted bind as b "
                        "then execute f unique on zzz after 1 seconds")
                .status().code(),
            StatusCode::kNotFound);
  // Duplicate rule name.
  ASSERT_OK(db_.Execute(
      "create rule dup on t when inserted then execute spy").status());
  EXPECT_EQ(db_.Execute(
                "create rule dup on t when inserted then execute spy")
                .status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(RulesEngineTest, SharedFunctionRequiresIdenticalBindings) {
  // Two rules executing the same function must define their bound tables
  // identically (§2).
  ASSERT_OK(db_.Execute(R"(
    create rule r1 on t when inserted
    if select k, v from inserted bind as b
    then execute shared unique after 1 seconds
  )").status());
  // Identical definition: accepted.
  ASSERT_OK(db_.Execute(R"(
    create rule r2 on t when deleted
    if select k, v from inserted bind as b
    then execute shared unique after 1 seconds
  )").status());
  // Different definition of `b`: rejected.
  EXPECT_EQ(db_.Execute(R"(
    create rule r3 on t when updated
    if select k from inserted bind as b
    then execute shared unique after 1 seconds
  )").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RulesEngineTest, TwoRulesSameFunctionShareUniqueTask) {
  // Firings of DIFFERENT rules executing the same function batch into the
  // same queued transaction (§2).
  ASSERT_OK(db_.ExecuteScript("create table t2 (k string, v int)"));
  ASSERT_OK(db_.RegisterFunction("shared_spy", [](FunctionContext& ctx) {
    return CopyBound(ctx, "seen");
  }));
  const char* kRule = R"(
    create rule %s on %s when inserted
    if select '%s' as what, k, v, execute_order as seq from inserted
       bind as seen
    then execute shared_spy unique after 1 seconds
  )";
  char buf[512];
  std::snprintf(buf, sizeof(buf), kRule, "ra", "t", "x");
  ASSERT_OK(db_.Execute(buf).status());
  // A different defining query for `seen` is rejected (§2)...
  std::snprintf(buf, sizeof(buf), kRule, "rbad", "t2", "DIFFERENT");
  EXPECT_EQ(db_.Execute(buf).status().code(), StatusCode::kInvalidArgument);
  // ...an identical one is accepted, and firings of BOTH rules merge into
  // one queued unique transaction.
  std::snprintf(buf, sizeof(buf), kRule, "rb", "t2", "x");
  ASSERT_OK(db_.Execute(buf).status());
  ASSERT_OK(db_.Execute("insert into t values ('a', 1)").status());
  ASSERT_OK(db_.Execute("insert into t2 values ('b', 2)").status());
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(db_.rules().stats().tasks_created, 1u);
  EXPECT_EQ(db_.rules().stats().firings_merged, 1u);
  ResultSet a = Audit();
  ASSERT_EQ(a.num_rows(), 2u);  // both firings' rows in one batch
}

TEST_F(RulesEngineTest, SelectStarOverTransitionTable) {
  // `select * from inserted` binds the entire transition table (the
  // paper's `foo` example in §2) — including execute_order.
  ASSERT_OK(db_.Execute(R"(
    create rule foo on t when inserted
    then evaluate select * from inserted bind as my_inserted
    execute my_function
  )").status());
  ASSERT_OK(db_.RegisterFunction("my_function", [](FunctionContext& ctx)
                                     -> Status {
    const TempTable* mine = ctx.BoundTable("my_inserted");
    if (mine == nullptr) return Status::NotFound("missing");
    if (mine->schema().FindColumn("execute_order") < 0) {
      return Status::Internal("no execute_order");
    }
    return ctx.Exec("insert into audit values ('star', 'x', " +
                    std::to_string(mine->size()) + ", 1)")
        .status();
  }));
  ASSERT_OK(db_.Execute("insert into t values ('a', 1), ('b', 2)").status());
  db_.simulated()->RunUntilQuiescent();
  ResultSet a = Audit();
  ASSERT_EQ(a.num_rows(), 1u);
  EXPECT_EQ(a.rows[0][2], Value::Int(2));
}

}  // namespace
}  // namespace strip
