// View manager + automatic rule generation (§8 future work) tests:
// materialized view creation / refresh, aggregation- and projection-shaped
// generated rules, unsupported-shape errors, and incremental-vs-recompute
// equivalence under randomized update streams.

#include <gtest/gtest.h>

#include "strip/common/rng.h"
#include "strip/engine/database.h"
#include "strip/viewmaint/rule_gen.h"
#include "strip/viewmaint/view_def.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Database::Options LogicalTime() {
  Database::Options o;
  o.mode = ExecutorMode::kSimulated;
  o.advance_clock_by_cost = false;
  return o;
}

class ViewManagerTest : public ::testing::Test {
 protected:
  ViewManagerTest() : db_(LogicalTime()) {}
  Database db_;
};

TEST_F(ViewManagerTest, MaterializedViewCreatesBackingTable) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0), ('b', 2.0), ('a', 3.0);
    create materialized view mv as
      select g, sum(v) as total from t group by g;
  )"));
  EXPECT_NE(db_.catalog().FindTable("mv"), nullptr);
  EXPECT_NE(db_.views().Find("mv"), nullptr);
  EXPECT_TRUE(db_.views().Find("mv")->materialized);
  auto rs = db_.Execute("select total from mv order by g");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 4.0);
}

TEST_F(ViewManagerTest, NonMaterializedViewHasNoTable) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (v int);
    create view plain as select v from t;
  )"));
  EXPECT_EQ(db_.catalog().FindTable("plain"), nullptr);
  EXPECT_NE(db_.views().Find("plain"), nullptr);
}

TEST_F(ViewManagerTest, RefreshRecomputesFromScratch) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0);
    create materialized view mv as
      select g, sum(v) as total from t group by g;
  )"));
  // Base changes without any maintenance rule: view is stale.
  ASSERT_OK(db_.Execute("insert into t values ('a', 9.0)").status());
  auto rs = db_.Execute("select total from mv");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 1.0);
  ASSERT_OK(db_.views().RefreshView("mv"));
  rs = db_.Execute("select total from mv");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 10.0);
}

TEST_F(ViewManagerTest, ErrorsAndDrop) {
  ASSERT_OK(db_.ExecuteScript("create table t (v int)"));
  // Duplicate / colliding names.
  ASSERT_OK(db_.Execute("create view v1 as select v from t").status());
  EXPECT_EQ(db_.Execute("create view v1 as select v from t").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db_.Execute("create view t as select v from t").status().code(),
            StatusCode::kAlreadyExists);
  // Refresh of a non-materialized view.
  EXPECT_EQ(db_.views().RefreshView("v1").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db_.views().RefreshView("zzz").code(), StatusCode::kNotFound);
  // Drop.
  ASSERT_OK(db_.views().DropView("v1"));
  EXPECT_EQ(db_.views().Find("v1"), nullptr);
  EXPECT_EQ(db_.views().DropView("v1").code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Rule generation (§8)
// ---------------------------------------------------------------------------

class RuleGenTest : public ::testing::Test {
 protected:
  RuleGenTest() : db_(LogicalTime()) {}

  void Quiesce() { db_.simulated()->RunUntilQuiescent(); }

  Database db_;
};

TEST_F(RuleGenTest, AggregationViewMaintainedIncrementally) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table sales (region string, amount double, qty int);
    create index on sales (region);
    insert into sales values ('eu', 10.0, 1), ('us', 20.0, 2);
    create materialized view rev as
      select region, sum(amount) as total from sales group by region;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db_, "rev", "sales", gen));
  EXPECT_EQ(rule.rule_name, "do_maintain_rev");
  EXPECT_NE(db_.rules().FindRule(rule.rule_name), nullptr);
  // The generator picked the view key as the unit of batching (§8).
  EXPECT_EQ(db_.rules().FindRule(rule.rule_name)->unique_columns().size(),
            1u);

  ASSERT_OK(db_.Execute("update sales set amount += 5.0 where region = 'eu'")
                .status());
  ASSERT_OK(db_.Execute("update sales set amount = 50.0 where region = 'us'")
                .status());
  // Changing an unrelated column must NOT fire the rule (updated-columns
  // predicate derived from the sum argument).
  ASSERT_OK(db_.Execute("update sales set qty = 9").status());
  Quiesce();

  auto rs = db_.Execute("select region, total from rev order by region");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 15.0);
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 50.0);
  EXPECT_EQ(db_.rules().stats().rules_triggered, 2u);  // not the qty update
}

TEST_F(RuleGenTest, AggregationWithJoinDimension) {
  // The comp_prices shape: weighted sums through a dimension table.
  ASSERT_OK(db_.ExecuteScript(R"(
    create table px (sym string, price double);
    create index on px (sym);
    create table members (grp string, sym string, w double);
    create index on members (sym);
    insert into px values ('s1', 10.0), ('s2', 20.0);
    insert into members values
      ('g1', 's1', 0.5), ('g1', 's2', 0.5), ('g2', 's1', 1.0);
    create materialized view idx as
      select grp, sum(px.price * w) as price
      from px, members
      where px.sym = members.sym
      group by grp;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 1.0;
  ASSERT_OK(
      GenerateMaintenanceRule(db_, "idx", "px", gen).status());

  ASSERT_OK(db_.Execute("update px set price = 14.0 where sym = 's1'")
                .status());
  ASSERT_OK(db_.Execute("update px set price = 24.0 where sym = 's2'")
                .status());
  Quiesce();
  auto rs = db_.Execute("select grp, price from idx order by grp");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 0.5 * 14 + 0.5 * 24);
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 14.0);
}

TEST_F(RuleGenTest, ProjectionViewRecomputedPerKey) {
  // The option_prices shape: per-row function application.
  ASSERT_OK(db_.ExecuteScript(R"(
    create table base (sym string, x double);
    create index on base (sym);
    create table derived_keys (id string, sym string, k double);
    create index on derived_keys (sym);
    insert into base values ('s1', 3.0), ('s2', 4.0);
    insert into derived_keys values
      ('d1', 's1', 2.0), ('d2', 's1', 10.0), ('d3', 's2', 1.0);
    create materialized view squared as
      select id, base.x * base.x + k as val
      from base, derived_keys
      where base.sym = derived_keys.sym;
  )"));
  RuleGenOptions gen;
  gen.unique = true;  // coarse batching for projection views
  gen.delay_seconds = 0.5;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db_, "squared", "base", gen));
  const RuleDef* def = db_.rules().FindRule(rule.rule_name);
  ASSERT_NE(def, nullptr);
  EXPECT_TRUE(def->unique());
  EXPECT_TRUE(def->unique_columns().empty());

  // Two updates to the same stock inside the window: last one wins.
  ASSERT_OK(db_.Execute("update base set x = 5.0 where sym = 's1'").status());
  ASSERT_OK(db_.Execute("update base set x = 6.0 where sym = 's1'").status());
  Quiesce();
  auto rs = db_.Execute("select id, val from squared order by id");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 38.0);  // 36 + 2
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 46.0);  // 36 + 10
  EXPECT_DOUBLE_EQ(rs->rows[2][1].as_double(), 17.0);  // untouched s2
}

TEST_F(RuleGenTest, UnsupportedShapesRejected) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0);
    create materialized view star_view as select * from t;
    create materialized view multi_agg as
      select g, sum(v) as a, count(*) as b from t group by g;
    create materialized view one_col as select g from t;
    create view not_materialized as select g, v from t;
  )"));
  RuleGenOptions gen;
  EXPECT_EQ(GenerateMaintenanceRule(db_, "star_view", "t", gen)
                .status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "multi_agg", "t", gen)
                .status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "one_col", "t", gen)
                .status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "not_materialized", "t", gen)
                .status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "nosuch", "t", gen)
                .status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "star_view", "nosuch", gen)
                .status().code(),
            StatusCode::kNotFound);
}

TEST_F(RuleGenTest, InsertAndDeleteEventsMaintainAggregationView) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table sales (region string, amount double);
    create index on sales (region);
    insert into sales values ('eu', 10.0), ('us', 20.0);
    create materialized view rev as
      select region, sum(amount) as total from sales group by region;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db_, "rev", "sales", gen));
  ASSERT_EQ(rule.extra_rule_names.size(), 2u);
  EXPECT_NE(db_.rules().FindRule("do_maintain_rev_ins"), nullptr);
  EXPECT_NE(db_.rules().FindRule("do_maintain_rev_del"), nullptr);

  // Insert into an existing group, insert a NEW group, delete a row.
  ASSERT_OK(db_.Execute("insert into sales values ('eu', 5.0)").status());
  ASSERT_OK(db_.Execute("insert into sales values ('jp', 7.0)").status());
  ASSERT_OK(db_.Execute(
      "delete from sales where region = 'us' and amount = 20.0").status());
  Quiesce();

  auto rs = db_.Execute("select region, total from rev order by region");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 15.0);  // eu
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 7.0);   // jp (new group)
  // us emptied: the documented limitation keeps a zero-sum row.
  EXPECT_NEAR(rs->rows[2][1].as_double(), 0.0, 1e-9);
}

TEST_F(RuleGenTest, MixedInsertUpdateDeleteStreamStaysConsistent) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
  )"));
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(db_.Execute("insert into t values ('g" +
                          std::to_string(i % 3) + "', " +
                          std::to_string(i) + ".0)").status());
  }
  ASSERT_OK(db_.Execute("create materialized view agg as "
                        "select g, sum(v) as total from t group by g")
                .status());
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK(GenerateMaintenanceRule(db_, "agg", "t", gen).status());

  Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    std::string g = "g" + std::to_string(rng.UniformInt(0, 4));  // g3/g4 new
    int pick = static_cast<int>(rng.UniformInt(0, 2));
    if (pick == 0) {
      ASSERT_OK(db_.Execute("insert into t values ('" + g + "', " +
                            std::to_string(rng.UniformReal(1, 9)) + ")")
                    .status());
    } else if (pick == 1) {
      ASSERT_OK(db_.Execute("update t set v += 1.5 where g = '" + g + "'")
                    .status());
    } else {
      ASSERT_OK(db_.Execute("delete from t where g = '" + g +
                            "' and v > 7.0").status());
    }
    if (rng.Bernoulli(0.25)) {
      db_.simulated()->RunUntil(db_.Now() + SecondsToMicros(0.3));
    }
  }
  Quiesce();

  // Maintained view equals a recompute for every group present in base
  // data (emptied groups may linger with zero sums — documented).
  auto fresh = db_.Execute(
      "select g, sum(v) as total from t group by g order by g");
  ASSERT_OK(fresh.status());
  for (const auto& row : fresh->rows) {
    auto got = db_.Execute("select total from agg where g = '" +
                           row[0].as_string() + "'");
    ASSERT_OK(got.status());
    ASSERT_EQ(got->num_rows(), 1u) << row[0].ToString();
    EXPECT_NEAR(got->rows[0][0].as_double(), row[1].as_double(), 1e-7)
        << "group " << row[0].ToString();
  }
}

/// Property sweep: random update streams against a generated aggregation
/// rule must leave the view exactly equal to a from-scratch recompute,
/// for several seeds and delay windows.
class RuleGenPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RuleGenPropertyTest, IncrementalEqualsRecompute) {
  auto [seed, delay] = GetParam();
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
  )"));
  Rng rng(static_cast<uint64_t>(seed));
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(db.Execute("insert into t values ('g" +
                         std::to_string(rng.UniformInt(0, 4)) + "', " +
                         std::to_string(rng.UniformReal(1, 100)) + ")")
                  .status());
  }
  ASSERT_OK(db.Execute("create materialized view agg as "
                       "select g, sum(v) as total from t group by g")
                .status());
  RuleGenOptions gen;
  gen.delay_seconds = delay;
  ASSERT_OK(GenerateMaintenanceRule(db, "agg", "t", gen).status());

  // Random update bursts over virtual time.
  for (int i = 0; i < 60; ++i) {
    std::string g = "g" + std::to_string(rng.UniformInt(0, 4));
    ASSERT_OK(db.Execute("update t set v += " +
                         std::to_string(rng.UniformReal(-5, 5)) +
                         " where g = '" + g + "'")
                  .status());
    if (rng.Bernoulli(0.3)) {
      db.simulated()->RunUntil(db.Now() + SecondsToMicros(delay / 2));
    }
  }
  db.simulated()->RunUntilQuiescent();

  auto maintained = db.Execute("select g, total from agg order by g");
  auto fresh =
      db.Execute("select g, sum(v) as total from t group by g order by g");
  ASSERT_OK(maintained.status());
  ASSERT_OK(fresh.status());
  ASSERT_EQ(maintained->num_rows(), fresh->num_rows());
  for (size_t i = 0; i < fresh->num_rows(); ++i) {
    EXPECT_EQ(maintained->rows[i][0], fresh->rows[i][0]);
    EXPECT_NEAR(maintained->rows[i][1].as_double(),
                fresh->rows[i][1].as_double(), 1e-7)
        << "group " << maintained->rows[i][0].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RuleGenPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.25, 1.0, 3.0)));

}  // namespace
}  // namespace strip
