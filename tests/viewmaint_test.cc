// View manager + automatic rule generation (§8 future work) tests:
// materialized view creation / refresh, aggregation- and projection-shaped
// generated rules, unsupported-shape errors, and incremental-vs-recompute
// equivalence under randomized update streams.

#include <gtest/gtest.h>

#include "strip/common/rng.h"
#include "strip/engine/database.h"
#include "strip/viewmaint/rule_gen.h"
#include "strip/viewmaint/view_def.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Database::Options LogicalTime() {
  Database::Options o;
  o.mode = ExecutorMode::kSimulated;
  o.advance_clock_by_cost = false;
  return o;
}

class ViewManagerTest : public ::testing::Test {
 protected:
  ViewManagerTest() : db_(LogicalTime()) {}
  Database db_;
};

TEST_F(ViewManagerTest, MaterializedViewCreatesBackingTable) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0), ('b', 2.0), ('a', 3.0);
    create materialized view mv as
      select g, sum(v) as total from t group by g;
  )"));
  EXPECT_NE(db_.catalog().FindTable("mv"), nullptr);
  EXPECT_NE(db_.views().Find("mv"), nullptr);
  EXPECT_TRUE(db_.views().Find("mv")->materialized);
  auto rs = db_.Execute("select total from mv order by g");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 4.0);
}

TEST_F(ViewManagerTest, NonMaterializedViewHasNoTable) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (v int);
    create view plain as select v from t;
  )"));
  EXPECT_EQ(db_.catalog().FindTable("plain"), nullptr);
  EXPECT_NE(db_.views().Find("plain"), nullptr);
}

TEST_F(ViewManagerTest, RefreshRecomputesFromScratch) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0);
    create materialized view mv as
      select g, sum(v) as total from t group by g;
  )"));
  // Base changes without any maintenance rule: view is stale.
  ASSERT_OK(db_.Execute("insert into t values ('a', 9.0)").status());
  auto rs = db_.Execute("select total from mv");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 1.0);
  ASSERT_OK(db_.views().RefreshView("mv"));
  rs = db_.Execute("select total from mv");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 10.0);
}

TEST_F(ViewManagerTest, ErrorsAndDrop) {
  ASSERT_OK(db_.ExecuteScript("create table t (v int)"));
  // Duplicate / colliding names.
  ASSERT_OK(db_.Execute("create view v1 as select v from t").status());
  EXPECT_EQ(db_.Execute("create view v1 as select v from t").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db_.Execute("create view t as select v from t").status().code(),
            StatusCode::kAlreadyExists);
  // Refresh of a non-materialized view.
  EXPECT_EQ(db_.views().RefreshView("v1").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db_.views().RefreshView("zzz").code(), StatusCode::kNotFound);
  // Drop.
  ASSERT_OK(db_.views().DropView("v1"));
  EXPECT_EQ(db_.views().Find("v1"), nullptr);
  EXPECT_EQ(db_.views().DropView("v1").code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Rule generation (§8)
// ---------------------------------------------------------------------------

class RuleGenTest : public ::testing::Test {
 protected:
  RuleGenTest() : db_(LogicalTime()) {}

  void Quiesce() { db_.simulated()->RunUntilQuiescent(); }

  Database db_;
};

TEST_F(RuleGenTest, AggregationViewMaintainedIncrementally) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table sales (region string, amount double, qty int);
    create index on sales (region);
    insert into sales values ('eu', 10.0, 1), ('us', 20.0, 2);
    create materialized view rev as
      select region, sum(amount) as total from sales group by region;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db_, "rev", "sales", gen));
  EXPECT_EQ(rule.rule_name, "do_maintain_rev");
  EXPECT_NE(db_.rules().FindRule(rule.rule_name), nullptr);
  // The generator picked the view key as the unit of batching (§8).
  EXPECT_EQ(db_.rules().FindRule(rule.rule_name)->unique_columns().size(),
            1u);

  ASSERT_OK(db_.Execute("update sales set amount += 5.0 where region = 'eu'")
                .status());
  ASSERT_OK(db_.Execute("update sales set amount = 50.0 where region = 'us'")
                .status());
  // Changing an unrelated column must NOT fire the rule (updated-columns
  // predicate derived from the sum argument).
  ASSERT_OK(db_.Execute("update sales set qty = 9").status());
  Quiesce();

  auto rs = db_.Execute("select region, total from rev order by region");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 15.0);
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 50.0);
  EXPECT_EQ(db_.rules().stats().rules_triggered, 2u);  // not the qty update
}

TEST_F(RuleGenTest, AggregationWithJoinDimension) {
  // The comp_prices shape: weighted sums through a dimension table.
  ASSERT_OK(db_.ExecuteScript(R"(
    create table px (sym string, price double);
    create index on px (sym);
    create table members (grp string, sym string, w double);
    create index on members (sym);
    insert into px values ('s1', 10.0), ('s2', 20.0);
    insert into members values
      ('g1', 's1', 0.5), ('g1', 's2', 0.5), ('g2', 's1', 1.0);
    create materialized view idx as
      select grp, sum(px.price * w) as price
      from px, members
      where px.sym = members.sym
      group by grp;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 1.0;
  ASSERT_OK(
      GenerateMaintenanceRule(db_, "idx", "px", gen).status());

  ASSERT_OK(db_.Execute("update px set price = 14.0 where sym = 's1'")
                .status());
  ASSERT_OK(db_.Execute("update px set price = 24.0 where sym = 's2'")
                .status());
  Quiesce();
  auto rs = db_.Execute("select grp, price from idx order by grp");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 0.5 * 14 + 0.5 * 24);
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 14.0);
}

TEST_F(RuleGenTest, ProjectionViewRecomputedPerKey) {
  // The option_prices shape: per-row function application.
  ASSERT_OK(db_.ExecuteScript(R"(
    create table base (sym string, x double);
    create index on base (sym);
    create table derived_keys (id string, sym string, k double);
    create index on derived_keys (sym);
    insert into base values ('s1', 3.0), ('s2', 4.0);
    insert into derived_keys values
      ('d1', 's1', 2.0), ('d2', 's1', 10.0), ('d3', 's2', 1.0);
    create materialized view squared as
      select id, base.x * base.x + k as val
      from base, derived_keys
      where base.sym = derived_keys.sym;
  )"));
  RuleGenOptions gen;
  gen.unique = true;  // coarse batching for projection views
  gen.delay_seconds = 0.5;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db_, "squared", "base", gen));
  const RuleDef* def = db_.rules().FindRule(rule.rule_name);
  ASSERT_NE(def, nullptr);
  EXPECT_TRUE(def->unique());
  EXPECT_TRUE(def->unique_columns().empty());

  // Two updates to the same stock inside the window: last one wins.
  ASSERT_OK(db_.Execute("update base set x = 5.0 where sym = 's1'").status());
  ASSERT_OK(db_.Execute("update base set x = 6.0 where sym = 's1'").status());
  Quiesce();
  auto rs = db_.Execute("select id, val from squared order by id");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 38.0);  // 36 + 2
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 46.0);  // 36 + 10
  EXPECT_DOUBLE_EQ(rs->rows[2][1].as_double(), 17.0);  // untouched s2
}

TEST_F(RuleGenTest, UnsupportedShapesRejected) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0);
    create materialized view star_view as select * from t;
    create materialized view min_agg as
      select g, min(v) as lo from t group by g;
    create materialized view two_keys as
      select g, v, sum(v) as s from t group by g, v;
    create materialized view one_col as select g from t;
    create view not_materialized as select g, v from t;
  )"));
  RuleGenOptions gen;
  EXPECT_EQ(GenerateMaintenanceRule(db_, "star_view", "t", gen)
                .status().code(),
            StatusCode::kUnimplemented);
  // MIN/MAX cannot be maintained from deltas under deletes.
  EXPECT_EQ(GenerateMaintenanceRule(db_, "min_agg", "t", gen)
                .status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "two_keys", "t", gen)
                .status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "one_col", "t", gen)
                .status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "not_materialized", "t", gen)
                .status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "nosuch", "t", gen)
                .status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(GenerateMaintenanceRule(db_, "star_view", "nosuch", gen)
                .status().code(),
            StatusCode::kNotFound);
}

TEST_F(RuleGenTest, InsertAndDeleteEventsMaintainAggregationView) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table sales (region string, amount double);
    create index on sales (region);
    insert into sales values ('eu', 10.0), ('us', 20.0);
    create materialized view rev as
      select region, sum(amount) as total from sales group by region;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db_, "rev", "sales", gen));
  ASSERT_EQ(rule.extra_rule_names.size(), 2u);
  EXPECT_NE(db_.rules().FindRule("do_maintain_rev_ins"), nullptr);
  EXPECT_NE(db_.rules().FindRule("do_maintain_rev_del"), nullptr);
  EXPECT_TRUE(db_.views().Find("rev")->hidden_count);
  EXPECT_TRUE(db_.views().Find("rev")->maintained);

  // Insert into an existing group, insert a NEW group, delete a row.
  ASSERT_OK(db_.Execute("insert into sales values ('eu', 5.0)").status());
  ASSERT_OK(db_.Execute("insert into sales values ('jp', 7.0)").status());
  ASSERT_OK(db_.Execute(
      "delete from sales where region = 'us' and amount = 20.0").status());
  Quiesce();

  // The emptied 'us' group is GONE (hidden-count tracking), not a
  // lingering zero-sum row — the [CW91] limitation fixed.
  auto rs = db_.Execute("select region, total from rev order by region");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->rows[0][0].as_string(), "eu");
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 15.0);
  EXPECT_EQ(rs->rows[1][0].as_string(), "jp");
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 7.0);
  // The hidden count is a real column of the backing table.
  auto cnt = db_.Execute("select _count from rev where region = 'eu'");
  ASSERT_OK(cnt.status());
  ASSERT_EQ(cnt->num_rows(), 1u);
  EXPECT_EQ(cnt->rows[0][0].as_int(), 2);
}

TEST_F(RuleGenTest, LegacyZeroSumRowWithoutCountTracking) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table sales (region string, amount double);
    create index on sales (region);
    insert into sales values ('eu', 10.0), ('us', 20.0);
    create materialized view rev as
      select region, sum(amount) as total from sales group by region;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  gen.track_group_count = false;  // opt out of the hidden count
  ASSERT_OK(GenerateMaintenanceRule(db_, "rev", "sales", gen).status());
  EXPECT_FALSE(db_.views().Find("rev")->hidden_count);

  ASSERT_OK(db_.Execute(
      "delete from sales where region = 'us' and amount = 20.0").status());
  Quiesce();

  // Without count tracking the emptied group keeps a zero-sum row ([CW91]).
  auto rs = db_.Execute("select region, total from rev order by region");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->rows[1][0].as_string(), "us");
  EXPECT_NEAR(rs->rows[1][1].as_double(), 0.0, 1e-9);
}

TEST_F(RuleGenTest, MultiAggregateViewWithCountMaintained) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
    insert into t values ('a', 1.0), ('a', 2.0), ('b', 5.0);
    create materialized view agg as
      select g, sum(v) as s, count(*) as n, sum(v * 2.0) as s2
      from t group by g;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db_, "agg", "t", gen));
  EXPECT_EQ(rule.strategy, "direct");

  ASSERT_OK(db_.Execute("insert into t values ('a', 4.0)").status());
  ASSERT_OK(db_.Execute("update t set v += 1.0 where g = 'b'").status());
  ASSERT_OK(db_.Execute("delete from t where g = 'a' and v = 1.0").status());
  Quiesce();

  auto rs = db_.Execute("select g, s, n, s2 from agg order by g");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 6.0);  // 2 + 4
  EXPECT_EQ(rs->rows[0][2].as_int(), 2);
  EXPECT_DOUBLE_EQ(rs->rows[0][3].as_double(), 12.0);
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 6.0);  // 5 + 1
  EXPECT_EQ(rs->rows[1][2].as_int(), 1);
  EXPECT_DOUBLE_EQ(rs->rows[1][3].as_double(), 12.0);
}

TEST_F(RuleGenTest, UpdateMovingGroupKeyMaintainsBothGroups) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
    insert into t values ('a', 1.0), ('a', 2.0), ('b', 5.0);
    create materialized view agg as
      select g, sum(v) as total from t group by g;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK(GenerateMaintenanceRule(db_, "agg", "t", gen).status());

  // Move a row from group 'a' to group 'b': the update rule ships both
  // the old and the new group key, so both sides adjust — and a move of
  // the LAST row of a group removes the group entirely.
  ASSERT_OK(db_.Execute("update t set g = 'b' where v = 2.0").status());
  Quiesce();
  auto rs = db_.Execute("select g, total from agg order by g");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 1.0);  // a
  EXPECT_DOUBLE_EQ(rs->rows[1][1].as_double(), 7.0);  // b

  ASSERT_OK(db_.Execute("update t set g = 'b' where g = 'a'").status());
  Quiesce();
  rs = db_.Execute("select g, total from agg order by g");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 1u);  // 'a' emptied by the move and erased
  EXPECT_EQ(rs->rows[0][0].as_string(), "b");
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 8.0);
}

TEST_F(RuleGenTest, MixedInsertUpdateDeleteStreamStaysConsistent) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
  )"));
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(db_.Execute("insert into t values ('g" +
                          std::to_string(i % 3) + "', " +
                          std::to_string(i) + ".0)").status());
  }
  ASSERT_OK(db_.Execute("create materialized view agg as "
                        "select g, sum(v) as total from t group by g")
                .status());
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK(GenerateMaintenanceRule(db_, "agg", "t", gen).status());

  Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    std::string g = "g" + std::to_string(rng.UniformInt(0, 4));  // g3/g4 new
    int pick = static_cast<int>(rng.UniformInt(0, 2));
    if (pick == 0) {
      ASSERT_OK(db_.Execute("insert into t values ('" + g + "', " +
                            std::to_string(rng.UniformReal(1, 9)) + ")")
                    .status());
    } else if (pick == 1) {
      ASSERT_OK(db_.Execute("update t set v += 1.5 where g = '" + g + "'")
                    .status());
    } else {
      ASSERT_OK(db_.Execute("delete from t where g = '" + g +
                            "' and v > 7.0").status());
    }
    if (rng.Bernoulli(0.25)) {
      db_.simulated()->RunUntil(db_.Now() + SecondsToMicros(0.3));
    }
  }
  Quiesce();

  // Count tracking makes the maintained view EXACTLY a recompute: same
  // groups (emptied ones erased at the idle sweep), same sums.
  auto fresh = db_.Execute(
      "select g, sum(v) as total from t group by g order by g");
  auto got = db_.Execute("select g, total from agg order by g");
  ASSERT_OK(fresh.status());
  ASSERT_OK(got.status());
  ASSERT_EQ(got->num_rows(), fresh->num_rows());
  for (size_t i = 0; i < fresh->num_rows(); ++i) {
    EXPECT_EQ(got->rows[i][0], fresh->rows[i][0]);
    EXPECT_NEAR(got->rows[i][1].as_double(), fresh->rows[i][1].as_double(),
                1e-7)
        << "group " << fresh->rows[i][0].ToString();
  }
}

/// Property sweep: random update streams against a generated aggregation
/// rule must leave the view exactly equal to a from-scratch recompute,
/// for several seeds and delay windows.
class RuleGenPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RuleGenPropertyTest, IncrementalEqualsRecompute) {
  auto [seed, delay] = GetParam();
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
  )"));
  Rng rng(static_cast<uint64_t>(seed));
  for (int i = 0; i < 30; ++i) {
    ASSERT_OK(db.Execute("insert into t values ('g" +
                         std::to_string(rng.UniformInt(0, 4)) + "', " +
                         std::to_string(rng.UniformReal(1, 100)) + ")")
                  .status());
  }
  ASSERT_OK(db.Execute("create materialized view agg as "
                       "select g, sum(v) as total from t group by g")
                .status());
  RuleGenOptions gen;
  gen.delay_seconds = delay;
  ASSERT_OK(GenerateMaintenanceRule(db, "agg", "t", gen).status());

  // Random update bursts over virtual time.
  for (int i = 0; i < 60; ++i) {
    std::string g = "g" + std::to_string(rng.UniformInt(0, 4));
    ASSERT_OK(db.Execute("update t set v += " +
                         std::to_string(rng.UniformReal(-5, 5)) +
                         " where g = '" + g + "'")
                  .status());
    if (rng.Bernoulli(0.3)) {
      db.simulated()->RunUntil(db.Now() + SecondsToMicros(delay / 2));
    }
  }
  db.simulated()->RunUntilQuiescent();

  auto maintained = db.Execute("select g, total from agg order by g");
  auto fresh =
      db.Execute("select g, sum(v) as total from t group by g order by g");
  ASSERT_OK(maintained.status());
  ASSERT_OK(fresh.status());
  ASSERT_EQ(maintained->num_rows(), fresh->num_rows());
  for (size_t i = 0; i < fresh->num_rows(); ++i) {
    EXPECT_EQ(maintained->rows[i][0], fresh->rows[i][0]);
    EXPECT_NEAR(maintained->rows[i][1].as_double(),
                fresh->rows[i][1].as_double(), 1e-7)
        << "group " << maintained->rows[i][0].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RuleGenPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.25, 1.0, 3.0)));

/// Property sweep over the dim-probe strategy: a weighted-sum join view
/// under random insert / update / join-key-move / delete streams must end
/// exactly equal to a from-scratch recompute — including the ABSENCE of
/// emptied groups (hidden-count erasure).
class JoinViewPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(JoinViewPropertyTest, DimProbeEqualsRecompute) {
  auto [seed, delay] = GetParam();
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(R"(
    create table px (sym string, price double);
    create index on px (sym);
    create table members (grp string, sym string, w double);
    create index on members (sym);
    insert into members values
      ('g0', 's0', 0.5), ('g0', 's1', 0.25), ('g1', 's1', 1.0),
      ('g1', 's2', 0.5), ('g2', 's3', 2.0), ('g2', 's0', 1.0);
  )"));
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 17);
  for (int i = 0; i < 12; ++i) {
    ASSERT_OK(db.Execute("insert into px values ('s" +
                         std::to_string(rng.UniformInt(0, 4)) + "', " +
                         std::to_string(rng.UniformInt(1, 50)) + ".0)")
                  .status());
  }
  ASSERT_OK(db.Execute("create materialized view idx as "
                       "select grp, sum(px.price * w) as total "
                       "from px, members where px.sym = members.sym "
                       "group by grp")
                .status());
  RuleGenOptions gen;
  gen.delay_seconds = delay;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db, "idx", "px", gen));
  EXPECT_EQ(rule.strategy, "dim-probe");

  for (int i = 0; i < 80; ++i) {
    std::string sym = "s" + std::to_string(rng.UniformInt(0, 4));
    switch (static_cast<int>(rng.UniformInt(0, 3))) {
      case 0:
        ASSERT_OK(db.Execute("insert into px values ('" + sym + "', " +
                             std::to_string(rng.UniformInt(1, 50)) + ".0)")
                      .status());
        break;
      case 1:
        ASSERT_OK(
            db.Execute("update px set price += 2.0 where sym = '" + sym +
                       "'")
                .status());
        break;
      case 2: {
        // Join-key move: rows change symbol, so both the old and the new
        // symbol's groups must adjust (exact under dim-probe).
        std::string to = "s" + std::to_string(rng.UniformInt(0, 4));
        ASSERT_OK(db.Execute("update px set sym = '" + to +
                             "' where sym = '" + sym + "' and price > 40.0")
                      .status());
        break;
      }
      default:
        ASSERT_OK(db.Execute("delete from px where sym = '" + sym +
                             "' and price > 45.0")
                      .status());
        break;
    }
    if (rng.Bernoulli(0.3)) {
      db.simulated()->RunUntil(db.Now() + SecondsToMicros(delay / 2));
    }
  }
  db.simulated()->RunUntilQuiescent();

  auto got = db.Execute("select grp, total from idx order by grp");
  auto fresh = db.Execute(
      "select grp, sum(px.price * w) as total from px, members "
      "where px.sym = members.sym group by grp order by grp");
  ASSERT_OK(got.status());
  ASSERT_OK(fresh.status());
  ASSERT_EQ(got->num_rows(), fresh->num_rows());
  for (size_t i = 0; i < fresh->num_rows(); ++i) {
    EXPECT_EQ(got->rows[i][0], fresh->rows[i][0]);
    EXPECT_NEAR(got->rows[i][1].as_double(),
                fresh->rows[i][1].as_double(), 1e-6)
        << "group " << fresh->rows[i][0].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinViewPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.25, 1.0, 3.0)));

// ---------------------------------------------------------------------------
// AVG maintenance (AVG = SUM / hidden _count)
// ---------------------------------------------------------------------------

TEST_F(RuleGenTest, AvgViewMaintainedUnderInsertUpdateDelete) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
    insert into t values ('a', 1.0), ('a', 3.0), ('b', 10.0);
    create materialized view m as
      select g, avg(v) as mean, sum(v) as s from t group by g;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK(GenerateMaintenanceRule(db_, "m", "t", gen).status());

  ASSERT_OK(db_.Execute("insert into t values ('a', 8.0)").status());
  ASSERT_OK(db_.Execute("update t set v += 2.0 where g = 'b'").status());
  ASSERT_OK(db_.Execute("delete from t where g = 'a' and v = 1.0").status());
  Quiesce();

  auto rs = db_.Execute("select g, mean, s from m order by g");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_NEAR(rs->rows[0][1].as_double(), (3.0 + 8.0) / 2, 1e-9);
  EXPECT_NEAR(rs->rows[0][2].as_double(), 11.0, 1e-9);
  EXPECT_NEAR(rs->rows[1][1].as_double(), 12.0, 1e-9);
}

TEST_F(RuleGenTest, AvgRequiresCountTracking) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
    create materialized view m as
      select g, avg(v) as mean from t group by g;
  )"));
  // AVG maintenance divides by the hidden per-group count; without it the
  // quotient cannot be updated incrementally.
  RuleGenOptions gen;
  gen.track_group_count = false;
  EXPECT_EQ(GenerateMaintenanceRule(db_, "m", "t", gen).status().code(),
            StatusCode::kInvalidArgument);
}

/// Delta-maintained AVG vs from-scratch recompute under randomized streams:
/// the satellite's equivalence requirement. The quotient accumulates float
/// error across incremental updates, so comparison is to tolerance, not
/// bit-exact.
class AvgPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(AvgPropertyTest, DeltaAvgEqualsRecompute) {
  auto [seed, delay] = GetParam();
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
  )"));
  Rng rng(static_cast<uint64_t>(seed) * 131 + 7);
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(db.Execute("insert into t values ('g" +
                         std::to_string(rng.UniformInt(0, 3)) + "', " +
                         std::to_string(rng.UniformReal(1, 100)) + ")")
                  .status());
  }
  ASSERT_OK(db.Execute("create materialized view m as "
                       "select g, avg(v) as mean from t group by g")
                .status());
  RuleGenOptions gen;
  gen.delay_seconds = delay;
  ASSERT_OK(GenerateMaintenanceRule(db, "m", "t", gen).status());

  for (int i = 0; i < 70; ++i) {
    std::string g = "g" + std::to_string(rng.UniformInt(0, 3));
    switch (static_cast<int>(rng.UniformInt(0, 2))) {
      case 0:
        ASSERT_OK(db.Execute("insert into t values ('" + g + "', " +
                             std::to_string(rng.UniformReal(1, 100)) + ")")
                      .status());
        break;
      case 1:
        ASSERT_OK(db.Execute("update t set v += " +
                             std::to_string(rng.UniformReal(-10, 10)) +
                             " where g = '" + g + "'")
                      .status());
        break;
      default:
        ASSERT_OK(db.Execute("delete from t where g = '" + g +
                             "' and v > 90.0")
                      .status());
        break;
    }
    if (rng.Bernoulli(0.3)) {
      db.simulated()->RunUntil(db.Now() + SecondsToMicros(delay / 2));
    }
  }
  db.simulated()->RunUntilQuiescent();

  auto got = db.Execute("select g, mean from m order by g");
  auto fresh =
      db.Execute("select g, avg(v) as mean from t group by g order by g");
  ASSERT_OK(got.status());
  ASSERT_OK(fresh.status());
  ASSERT_EQ(got->num_rows(), fresh->num_rows());
  for (size_t i = 0; i < fresh->num_rows(); ++i) {
    EXPECT_EQ(got->rows[i][0], fresh->rows[i][0]);
    EXPECT_NEAR(got->rows[i][1].as_double(), fresh->rows[i][1].as_double(),
                1e-6)
        << "group " << fresh->rows[i][0].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AvgPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.25, 1.0)));

// ---------------------------------------------------------------------------
// Dimension-change recompute fallback
// ---------------------------------------------------------------------------

TEST_F(RuleGenTest, DimChangeFallsBackToRecomputeAndCounts) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table px (sym string, price double);
    create index on px (sym);
    create table members (grp string, sym string, w double);
    create index on members (sym);
    insert into px values ('s1', 10.0), ('s2', 20.0);
    insert into members values ('g1', 's1', 1.0);
    create materialized view idx as
      select grp, sum(px.price * w) as total
      from px, members where px.sym = members.sym group by grp;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.5;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db_, "idx", "px", gen));
  // The fallback rule on the dimension table rode along.
  EXPECT_NE(db_.rules().FindRule("dim_fallback_idx_members"), nullptr);
  uint64_t before =
      db_.metrics().counter("viewmaint.dim_fallback_recompute")->Get();

  // A dimension change the delta rules cannot see: new member row.
  ASSERT_OK(
      db_.Execute("insert into members values ('g1', 's2', 0.5)").status());
  Quiesce();

  auto rs = db_.Execute("select grp, total from idx");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 10.0 + 0.5 * 20.0);
  EXPECT_EQ(db_.metrics().counter("viewmaint.dim_fallback_recompute")->Get(),
            before + 1);

  // Fact-side deltas still work after a refresh.
  ASSERT_OK(db_.Execute("update px set price = 30.0 where sym = 's2'")
                .status());
  Quiesce();
  rs = db_.Execute("select grp, total from idx");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 10.0 + 0.5 * 30.0);
}

TEST_F(RuleGenTest, DimFallbackCanBeDisabled) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table px (sym string, price double);
    create index on px (sym);
    create table members (grp string, sym string, w double);
    create index on members (sym);
    insert into px values ('s1', 10.0);
    insert into members values ('g1', 's1', 1.0);
    create materialized view idx as
      select grp, sum(px.price * w) as total
      from px, members where px.sym = members.sym group by grp;
  )"));
  RuleGenOptions gen;
  gen.dim_change_fallback = false;
  ASSERT_OK(GenerateMaintenanceRule(db_, "idx", "px", gen).status());
  EXPECT_EQ(db_.rules().FindRule("dim_fallback_idx_members"), nullptr);

  // Without the fallback a dim change leaves the view stale — the
  // documented §3 assumption, now opt-in instead of silent.
  ASSERT_OK(
      db_.Execute("insert into members values ('g1', 's1', 9.0)").status());
  Quiesce();
  auto rs = db_.Execute("select total from idx");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 10.0);  // stale
}

// ---------------------------------------------------------------------------
// Two-tier shard export / merge (unit level; cluster_test covers the
// cross-engine path)
// ---------------------------------------------------------------------------

TEST_F(RuleGenTest, ShardExportShipsFoldedDeltasAndMergeApplies) {
  // One "shard" engine and one "merge" engine, wired by hand.
  Database merge_db(LogicalTime());
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
    insert into t values ('a', 1.0), ('b', 2.0);
    create materialized view agg as
      select g, sum(v) as s from t group by g;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 0.2;
  ASSERT_OK(GenerateMaintenanceRule(db_, "agg", "t", gen).status());

  ASSERT_OK(merge_db.ExecuteScript(
      "create table agg (g string, s double, _count int);"
      "create index on agg (g);"));
  MergeRuleOptions merge_opts;
  merge_opts.delay_seconds = 0.2;
  ASSERT_OK_AND_ASSIGN(MergeRuleSpec merge_spec,
                       GenerateMergeRule(merge_db, "agg", merge_opts));
  EXPECT_EQ(merge_spec.staging_table, "agg_deltas");
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<FeedImporter> staging,
      FeedImporter::Create(&merge_db, merge_spec.staging_table));

  size_t shipped = 0;
  ShardExportOptions export_opts;
  export_opts.shard_id = 3;
  export_opts.delay_seconds = 0.2;
  ASSERT_OK(GenerateShardDeltaExport(
                db_, "agg", export_opts,
                [&](const FeedRecord& rec) -> Status {
                  ++shipped;
                  // _seq carries the shard id in its high bits.
                  EXPECT_EQ(rec.values[0].as_int() >> 48, 3);
                  return staging->Submit(rec);
                })
                .status());

  // Two same-group changes inside one export window must fold to ONE
  // shipped delta; the merge rule applies the net effect.
  ASSERT_OK(db_.Execute("insert into t values ('a', 10.0)").status());
  ASSERT_OK(db_.Execute("update t set v += 5.0 where g = 'a' and v = 1.0")
                .status());
  Quiesce();
  merge_db.simulated()->RunUntilQuiescent();
  Quiesce();
  merge_db.simulated()->RunUntilQuiescent();

  EXPECT_EQ(shipped, 1u);
  auto rs = merge_db.Execute("select g, s, _count from agg");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][0].as_string(), "a");
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 15.0);  // +10 insert, +5 upd
  EXPECT_EQ(rs->rows[0][2].as_int(), 1);
  // Consumed staging rows were cleaned up.
  auto staged = merge_db.Execute("select _seq from agg_deltas");
  ASSERT_OK(staged.status());
  EXPECT_EQ(staged->num_rows(), 0u);
}

TEST_F(RuleGenTest, ShardExportRequiresMaintainedSumView) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    create index on t (g);
    create materialized view agg as
      select g, sum(v) as s from t group by g;
  )"));
  auto sink = [](const FeedRecord&) { return Status::OK(); };
  // Not maintained yet -> no hidden count to ship.
  EXPECT_EQ(GenerateShardDeltaExport(db_, "agg", ShardExportOptions{}, sink)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(GenerateShardDeltaExport(db_, "zzz", ShardExportOptions{}, sink)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(RuleGenTest, MergeRuleRejectsWrongLayout) {
  Database merge_db(LogicalTime());
  ASSERT_OK(merge_db.ExecuteScript(
      "create table nocount (g string, s double);"));
  EXPECT_EQ(GenerateMergeRule(merge_db, "nocount", MergeRuleOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace strip
