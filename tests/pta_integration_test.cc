// Integration tests of the full program-trading pipeline (§3-§5) at a
// reduced scale: trace generation, table population, rule installation,
// trace replay under the discrete-event executor, and — the key
// correctness property — that every batching variant leaves the
// materialized views exactly consistent with a from-scratch recomputation
// once the system quiesces.

#include <gtest/gtest.h>

#include "strip/market/app_functions.h"
#include "strip/market/pta_runner.h"

namespace strip {
namespace {

#define ASSERT_OK(expr)                              \
  do {                                               \
    auto _st = (expr);                               \
    ASSERT_TRUE(_st.ok()) << _st.ToString();         \
  } while (0)

TraceOptions SmallTrace() {
  TraceOptions t;
  t.num_stocks = 120;
  t.duration_seconds = 30;
  t.target_updates = 600;
  t.seed = 11;
  return t;
}

PtaConfig SmallPta() {
  PtaConfig c;
  c.num_composites = 12;
  c.stocks_per_composite = 20;
  c.num_options = 300;
  c.seed = 13;
  return c;
}

class PtaIntegrationTest : public ::testing::Test {
 protected:
  static const MarketTrace& Trace() {
    static const MarketTrace* trace =
        new MarketTrace(MarketTrace::Generate(SmallTrace()));
    return *trace;
  }

  PtaRunResult RunComp(CompRuleVariant v, double delay) {
    PtaExperiment exp(Trace(), SmallPta());
    Status st = exp.Setup(CompRuleSql(v, delay));
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto result = exp.Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->failed_tasks, 0u);
    st = CheckDerivedDataConsistency(exp.db(), 0.05, 1e-6,
                                     /*check_comps=*/true,
                                     /*check_options=*/false);
    EXPECT_TRUE(st.ok()) << CompRuleVariantName(v) << " delay " << delay
                         << ": " << st.ToString();
    return result.ok() ? *result : PtaRunResult{};
  }

  PtaRunResult RunOption(OptionRuleVariant v, double delay) {
    PtaExperiment exp(Trace(), SmallPta());
    Status st = exp.Setup(OptionRuleSql(v, delay));
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto result = exp.Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->failed_tasks, 0u);
    st = CheckDerivedDataConsistency(exp.db(), 0.05, 1e-6,
                                     /*check_comps=*/false,
                                     /*check_options=*/true);
    EXPECT_TRUE(st.ok()) << OptionRuleVariantName(v) << " delay " << delay
                         << ": " << st.ToString();
    return result.ok() ? *result : PtaRunResult{};
  }
};

TEST_F(PtaIntegrationTest, PopulationShapesMatchConfig) {
  PtaExperiment exp(Trace(), SmallPta());
  ASSERT_OK(exp.Setup(""));
  Database& db = exp.db();
  EXPECT_EQ(db.catalog().FindTable("stocks")->size(), 120u);
  EXPECT_EQ(db.catalog().FindTable("comps_list")->size(), 12u * 20u);
  EXPECT_EQ(db.catalog().FindTable("comp_prices")->size(), 12u);
  EXPECT_EQ(db.catalog().FindTable("options_list")->size(), 300u);
  EXPECT_EQ(db.catalog().FindTable("option_prices")->size(), 300u);
  // Freshly materialized views are consistent by construction.
  ASSERT_OK(CheckDerivedDataConsistency(db, 0.05, 1e-9, true, true));
}

TEST_F(PtaIntegrationTest, BaselineNoRuleLeavesViewsStale) {
  PtaExperiment exp(Trace(), SmallPta());
  ASSERT_OK(exp.Setup(""));
  auto result = exp.Run();
  ASSERT_OK(result.status());
  EXPECT_EQ(result->num_recomputes, 0u);
  EXPECT_EQ(result->num_updates, Trace().quotes().size());
  // Without maintenance rules the views drift from base data.
  Status st = CheckDerivedDataConsistency(exp.db(), 0.05, 1e-6, true, false);
  EXPECT_FALSE(st.ok());
}

TEST_F(PtaIntegrationTest, NonUniqueCompRuleMaintainsView) {
  PtaRunResult r = RunComp(CompRuleVariant::kNonUnique, 0);
  // One recompute transaction per triggering update (§5.1): every update
  // whose stock is in some composite fires one task.
  EXPECT_GT(r.num_recomputes, 0u);
  EXPECT_LE(r.num_recomputes, r.num_updates);
  EXPECT_EQ(r.firings_merged, 0u);
}

TEST_F(PtaIntegrationTest, CoarseUniqueCompRuleBatches) {
  PtaRunResult nonunique = RunComp(CompRuleVariant::kNonUnique, 0);
  PtaRunResult unique = RunComp(CompRuleVariant::kUnique, 2.0);
  // Coarse batching runs the fewest recompute transactions (Figure 10).
  EXPECT_LT(unique.num_recomputes, nonunique.num_recomputes);
  EXPECT_GT(unique.firings_merged, 0u);
}

TEST_F(PtaIntegrationTest, UniqueOnCompRunsMoreTasksThanCoarse) {
  PtaRunResult coarse = RunComp(CompRuleVariant::kUnique, 1.0);
  PtaRunResult on_comp = RunComp(CompRuleVariant::kUniqueOnComp, 1.0);
  // Per-composite batching creates many more (smaller) transactions
  // (Figure 10: about an order of magnitude more than non-unique).
  EXPECT_GT(on_comp.num_recomputes, coarse.num_recomputes);
  // ...but each is much shorter (Figure 11).
  EXPECT_LT(on_comp.avg_recompute_micros, coarse.avg_recompute_micros);
}

TEST_F(PtaIntegrationTest, UniqueOnSymbolCompRuleConsistent) {
  PtaRunResult r = RunComp(CompRuleVariant::kUniqueOnSymbol, 1.0);
  EXPECT_GT(r.num_recomputes, 0u);
}

TEST_F(PtaIntegrationTest, LongerDelayMeansFewerRecomputes) {
  PtaRunResult d_half = RunComp(CompRuleVariant::kUniqueOnComp, 0.5);
  PtaRunResult d_three = RunComp(CompRuleVariant::kUniqueOnComp, 3.0);
  // Figure 10: the recomputation count decreases with the delay window.
  EXPECT_LT(d_three.num_recomputes, d_half.num_recomputes);
}

TEST_F(PtaIntegrationTest, NonUniqueOptionRuleMaintainsView) {
  PtaRunResult r = RunOption(OptionRuleVariant::kNonUnique, 0);
  EXPECT_GT(r.num_recomputes, 0u);
}

TEST_F(PtaIntegrationTest, UniqueOptionRulesBatchAndStayConsistent) {
  PtaRunResult coarse = RunOption(OptionRuleVariant::kUnique, 2.0);
  PtaRunResult on_symbol = RunOption(OptionRuleVariant::kUniqueOnSymbol, 2.0);
  EXPECT_GT(coarse.firings_merged, 0u);
  // Batching on stock symbol runs far more transactions than coarse
  // (Figure 13) but they are far shorter (Figure 14).
  EXPECT_GT(on_symbol.num_recomputes, coarse.num_recomputes);
  EXPECT_LT(on_symbol.avg_recompute_micros, coarse.avg_recompute_micros);
}

TEST_F(PtaIntegrationTest, UniqueOnOptionSymbolExplodesTaskCount) {
  PtaRunResult on_opt =
      RunOption(OptionRuleVariant::kUniqueOnOptionSymbol, 1.0);
  PtaRunResult on_symbol = RunOption(OptionRuleVariant::kUniqueOnSymbol, 1.0);
  // §5.2: the fan-out from stocks to options makes per-option batching
  // create an unmanageable number of transactions.
  EXPECT_GT(on_opt.num_recomputes, on_symbol.num_recomputes);
}

}  // namespace
}  // namespace strip
