// In-process cluster tests: symbol-hash router determinism and skew,
// wire round trips through the router path (with reordered and duplicated
// streams), and end-to-end two-tier view maintenance — shard partials
// folding into the merge engine's top-level view across the byte boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "strip/cluster/cluster.h"
#include "strip/cluster/feed_router.h"
#include "strip/feed/wire.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Database::Options LogicalTime() {
  Database::Options o;
  o.mode = ExecutorMode::kSimulated;
  o.advance_clock_by_cost = false;
  return o;
}

ClusterOptions SimCluster(int shards) {
  ClusterOptions o;
  o.num_shards = shards;
  o.shard = LogicalTime();
  o.merge = LogicalTime();
  return o;
}

// ---------------------------------------------------------------------------
// Router hashing
// ---------------------------------------------------------------------------

TEST(FeedRouterTest, HashIsDeterministicAndEqualityConsistent) {
  EXPECT_EQ(RouteHash(Value::Str("IBM")), RouteHash(Value::Str("IBM")));
  EXPECT_NE(RouteHash(Value::Str("IBM")), RouteHash(Value::Str("AAPL")));
  // Int(3) == Double(3.0) under Value equality; they must route together.
  EXPECT_EQ(RouteHash(Value::Int(3)), RouteHash(Value::Double(3.0)));
  EXPECT_EQ(ShardFor(Value::Str("IBM"), 4), ShardFor(Value::Str("IBM"), 4));
}

TEST(FeedRouterTest, SkewStaysBoundedAcrossShardCounts) {
  // 4096 short symbol-like keys; per-shard share must stay within 30% of
  // the uniform share at every cluster size the bench uses. A regression
  // here (e.g. hashing only the first byte) would silently serialize the
  // cluster through one shard.
  const int kKeys = 4096;
  for (int shards : {1, 2, 4, 8}) {
    std::vector<int> counts(static_cast<size_t>(shards), 0);
    for (int i = 0; i < kKeys; ++i) {
      Value key = Value::Str("SYM" + std::to_string(i));
      int s = ShardFor(key, shards);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, shards);
      ++counts[static_cast<size_t>(s)];
    }
    double uniform = static_cast<double>(kKeys) / shards;
    for (int s = 0; s < shards; ++s) {
      EXPECT_GT(counts[static_cast<size_t>(s)], 0.7 * uniform)
          << shards << " shards, shard " << s;
      EXPECT_LT(counts[static_cast<size_t>(s)], 1.3 * uniform)
          << shards << " shards, shard " << s;
    }
  }
}

TEST(FeedRouterTest, RoutesEveryRecordToItsHashShardOverTheWire) {
  // Inboxes decode the wire bytes and record what arrived where.
  const int kShards = 4;
  std::vector<std::vector<FeedRecord>> arrived(kShards);
  std::vector<FeedRouter::Inbox> inboxes;
  for (int s = 0; s < kShards; ++s) {
    inboxes.push_back([&arrived, s](std::string_view bytes) -> Status {
      STRIP_ASSIGN_OR_RETURN(std::vector<FeedRecord> recs,
                             DecodeFeedStream(bytes));
      for (auto& r : recs) arrived[static_cast<size_t>(s)].push_back(r);
      return Status::OK();
    });
  }
  FeedRouter router(std::move(inboxes));
  for (int i = 0; i < 64; ++i) {
    FeedRecord rec;
    rec.at = i;
    rec.values = {Value::Str("K" + std::to_string(i)), Value::Double(i)};
    ASSERT_OK(router.Route(rec));
  }
  EXPECT_EQ(router.total_routed(), 64u);
  uint64_t seen = 0;
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(router.routed(s), arrived[static_cast<size_t>(s)].size());
    for (const FeedRecord& r : arrived[static_cast<size_t>(s)]) {
      EXPECT_EQ(ShardFor(r.values[0], kShards), s);
      // The router stamped a root trace before encoding.
      EXPECT_TRUE(r.trace.traced());
      seen += 1;
    }
  }
  EXPECT_EQ(seen, 64u);
}

// ---------------------------------------------------------------------------
// Cluster feeds
// ---------------------------------------------------------------------------

constexpr const char* kTradesDdl =
    "create table trades (symbol string, sector string, price double,"
    " qty int); create index on trades (symbol);";

TEST(ClusterTest, RoutedFeedUpsertsIntoOwningShards) {
  Cluster cluster(SimCluster(2));
  ASSERT_OK(cluster.ExecuteOnShards(kTradesDdl));
  ASSERT_OK_AND_ASSIGN(FeedRouter * router, cluster.OpenFeed("trades"));
  for (int i = 0; i < 20; ++i) {
    FeedRecord rec;
    rec.at = i;
    rec.values = {Value::Str("S" + std::to_string(i)), Value::Str("tech"),
                  Value::Double(100.0 + i), Value::Int(1)};
    ASSERT_OK(router->Route(rec));
  }
  ASSERT_OK(cluster.DrainAll());
  size_t total = 0;
  for (int s = 0; s < cluster.num_shards(); ++s) {
    ASSERT_OK_AND_ASSIGN(
        ResultSet rows,
        cluster.shard(s).Execute("select symbol from trades"));
    for (const auto& row : rows.rows) {
      // Shard-local data is exactly the hash-owned slice: shared-nothing.
      EXPECT_EQ(ShardFor(row[0], cluster.num_shards()), s);
    }
    total += rows.num_rows();
  }
  EXPECT_EQ(total, 20u);
}

TEST(ClusterTest, ReorderedAndDuplicatedStreamConvergesToSameState) {
  // The same logical stream — upserts keyed by symbol, release times
  // encoding feed order — must converge to the same table state when
  // submitted shuffled and with duplicated records: the simulated
  // executor releases by `at`, and upserts are idempotent per (key, at).
  std::vector<FeedRecord> stream;
  for (int i = 0; i < 30; ++i) {
    FeedRecord rec;
    rec.at = i * 100;
    rec.values = {Value::Str("S" + std::to_string(i % 10)), Value::Str("fin"),
                  Value::Double(10.0 * i), Value::Int(i)};
    stream.push_back(rec);
  }

  auto run = [&](std::vector<FeedRecord> recs) -> std::string {
    Cluster cluster(SimCluster(2));
    EXPECT_OK(cluster.ExecuteOnShards(kTradesDdl));
    auto router = cluster.OpenFeed("trades");
    EXPECT_TRUE(router.ok());
    EXPECT_OK((*router)->RouteAll(recs));
    EXPECT_OK(cluster.DrainAll());
    std::string state;
    for (int s = 0; s < cluster.num_shards(); ++s) {
      auto rows = cluster.shard(s).Execute(
          "select symbol, price, qty from trades order by symbol");
      EXPECT_TRUE(rows.ok());
      for (const auto& row : rows->rows) {
        state += row[0].ToString() + "=" + row[1].ToString() + "/" +
                 row[2].ToString() + ";";
      }
    }
    return state;
  };

  std::string in_order = run(stream);

  std::vector<FeedRecord> shuffled = stream;
  std::mt19937 rng(7);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);
  EXPECT_EQ(run(shuffled), in_order);

  std::vector<FeedRecord> duplicated = stream;
  duplicated.insert(duplicated.end(), stream.begin(), stream.begin() + 15);
  EXPECT_EQ(run(duplicated), in_order);
}

// ---------------------------------------------------------------------------
// Two-tier maintenance end to end
// ---------------------------------------------------------------------------

constexpr const char* kSectorViewDdl =
    "create materialized view sector_tot as "
    "select sector, sum(price * qty) as notional from trades group by sector;";

/// Expected top-level view: recompute over the union of all shard tables.
std::map<std::string, std::pair<double, int64_t>> RecomputeUnion(
    Cluster& cluster) {
  std::map<std::string, std::pair<double, int64_t>> want;
  for (int s = 0; s < cluster.num_shards(); ++s) {
    auto rows = cluster.shard(s).Execute(
        "select sector, price, qty from trades");
    EXPECT_TRUE(rows.ok());
    for (const auto& row : rows->rows) {
      auto& slot = want[row[0].as_string()];
      slot.first += row[1].as_double() * row[2].as_double();
      slot.second += 1;
    }
  }
  return want;
}

void ExpectMergedViewMatches(Cluster& cluster) {
  auto want = RecomputeUnion(cluster);
  auto rows = cluster.merge().Execute(
      "select sector, notional, _count from sector_tot order by sector");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->num_rows(), want.size());
  for (const auto& row : rows->rows) {
    auto it = want.find(row[0].as_string());
    ASSERT_NE(it, want.end()) << "unexpected group " << row[0].ToString();
    // Dyadic prices and integer quantities: double sums are exact, so the
    // cross-shard view must EQUAL the recompute, not approximate it.
    EXPECT_EQ(row[1].as_double(), it->second.first)
        << "group " << row[0].ToString();
    EXPECT_EQ(row[2].as_int(), it->second.second)
        << "group " << row[0].ToString();
  }
}

TEST(ClusterTest, TwoTierMaintainsCrossShardCompositeView) {
  Cluster cluster(SimCluster(4));
  ASSERT_OK(cluster.ExecuteOnShards(std::string(kTradesDdl) + kSectorViewDdl));

  Cluster::TwoTierOptions opts;
  opts.tier1.delay_seconds = 0.2;
  opts.export_delay_seconds = 0.3;
  opts.merge_delay_seconds = 0.3;
  ASSERT_OK(cluster.ConnectTwoTier("sector_tot", "trades", opts));
  ASSERT_OK_AND_ASSIGN(FeedRouter * router, cluster.OpenFeed("trades"));

  // Sectors deliberately span shards: every sector holds symbols whose
  // hashes land on different shards, so the top-level groups only exist
  // through the merge.
  const char* sectors[] = {"tech", "fin", "energy"};
  for (int i = 0; i < 60; ++i) {
    FeedRecord rec;
    rec.at = i * 10;
    rec.values = {Value::Str("SYM" + std::to_string(i)),
                  Value::Str(sectors[i % 3]),
                  Value::Double((i % 16) * 0.0625 + 10.0),  // dyadic: exact
                  Value::Int(1 + i % 5)};
    ASSERT_OK(router->Route(rec));
  }
  ASSERT_OK(cluster.DrainAll());
  EXPECT_GT(cluster.deltas_shipped(), 0u);
  ExpectMergedViewMatches(cluster);

  // Updates: re-route a third of the symbols with new prices. Tier-1 nets
  // new-old on each shard; the merge applies the shipped net deltas.
  for (int i = 0; i < 60; i += 3) {
    FeedRecord rec;
    rec.at = 1000 + i;
    rec.values = {Value::Str("SYM" + std::to_string(i)),
                  Value::Str(sectors[i % 3]),
                  Value::Double((i % 8) * 0.125 + 20.0), Value::Int(2)};
    ASSERT_OK(router->Route(rec));
  }
  ASSERT_OK(cluster.DrainAll());
  ExpectMergedViewMatches(cluster);
}

TEST(ClusterTest, TwoTierSeedsFromPrePopulatedShardsAndHandlesDeletes) {
  Cluster cluster(SimCluster(2));
  ASSERT_OK(cluster.ExecuteOnShards(kTradesDdl));
  // Pre-populate BEFORE the view and two-tier wiring exist: the merge
  // engine's top table must seed from the shard partials' current contents.
  ASSERT_OK(cluster.shard(0).ExecuteScript(
      "insert into trades values ('A0', 'tech', 10.5, 2),"
      " ('A1', 'fin', 8.25, 1);"));
  ASSERT_OK(cluster.shard(1).ExecuteScript(
      "insert into trades values ('B0', 'tech', 4.0, 3),"
      " ('B1', 'solo', 7.0, 1);"));
  ASSERT_OK(cluster.ExecuteOnShards(kSectorViewDdl));

  Cluster::TwoTierOptions opts;
  ASSERT_OK(cluster.ConnectTwoTier("sector_tot", "trades", opts));
  ASSERT_OK(cluster.DrainAll());
  ExpectMergedViewMatches(cluster);  // seeded cross-shard fold: tech on both

  // Deleting the last member of a group on its shard must, after the
  // shipped negative delta, erase the group's row from the merged view.
  ASSERT_OK(
      cluster.shard(1).Execute("delete from trades where symbol = 'B1'")
          .status());
  ASSERT_OK(cluster.DrainAll());
  ExpectMergedViewMatches(cluster);
  auto rows = cluster.merge().Execute(
      "select sector from sector_tot where sector = 'solo'");
  ASSERT_OK(rows.status());
  EXPECT_EQ(rows->num_rows(), 0u);
}

TEST(ClusterTest, MetricsAndTraceExportCoverEveryEngine) {
  Cluster cluster(SimCluster(2));
  ASSERT_OK(cluster.ExecuteOnShards(std::string(kTradesDdl) + kSectorViewDdl));
  Cluster::TwoTierOptions opts;
  ASSERT_OK(cluster.ConnectTwoTier("sector_tot", "trades", opts));
  ASSERT_OK_AND_ASSIGN(FeedRouter * router, cluster.OpenFeed("trades"));
  for (int i = 0; i < 8; ++i) {
    FeedRecord rec;
    rec.at = i;
    rec.values = {Value::Str("S" + std::to_string(i)), Value::Str("tech"),
                  Value::Double(1.0), Value::Int(1)};
    ASSERT_OK(router->Route(rec));
  }
  ASSERT_OK(cluster.DrainAll());

  std::string metrics = cluster.MetricsJson();
  EXPECT_NE(metrics.find("\"shard0\""), std::string::npos);
  EXPECT_NE(metrics.find("\"shard1\""), std::string::npos);
  EXPECT_NE(metrics.find("\"merge\""), std::string::npos);
  EXPECT_NE(metrics.find("\"deltas_shipped\""), std::string::npos);

  std::string trace = cluster.ChromeTraceJson();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  // Process-name metadata labels each engine's lane.
  EXPECT_NE(trace.find("\"shard0\""), std::string::npos);
  EXPECT_NE(trace.find("\"merge\""), std::string::npos);
}

TEST(ClusterTest, ShardExportRejectsAvgPartials) {
  Cluster cluster(SimCluster(2));
  ASSERT_OK(cluster.ExecuteOnShards(
      std::string(kTradesDdl) +
      "create materialized view bad as "
      "select sector, avg(price) as p from trades group by sector;"));
  Cluster::TwoTierOptions opts;
  EXPECT_EQ(cluster.ConnectTwoTier("bad", "trades", opts).code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace strip
