// Cursor API tests: the low-level scan / index / update / delete interface
// whose per-operation costs Table 1 reports.

#include <gtest/gtest.h>

#include "strip/engine/cursor.h"
#include "strip/engine/database.h"
#include "tests/test_util.h"

namespace strip {
namespace {

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      create table t (k string, v int);
      create index on t (k);
      insert into t values ('a', 1), ('b', 2), ('a', 3), ('c', 4);
    )"));
    table_ = db_.catalog().FindTable("t");
    ASSERT_NE(table_, nullptr);
  }

  Database db_;
  Table* table_ = nullptr;
};

TEST_F(CursorTest, FullScanVisitsEveryRow) {
  Cursor c(table_, nullptr);
  int n = 0;
  while (c.Fetch()) ++n;
  EXPECT_EQ(n, 4);
  EXPECT_FALSE(c.Fetch());  // stays at end
}

TEST_F(CursorTest, IndexedScanVisitsMatches) {
  ASSERT_OK_AND_ASSIGN(Cursor c,
                       Cursor::OpenIndexed(table_, nullptr, "k",
                                           Value::Str("a")));
  int n = 0;
  while (c.Fetch()) {
    EXPECT_EQ(c.Current().values[0], Value::Str("a"));
    ++n;
  }
  EXPECT_EQ(n, 2);
}

TEST_F(CursorTest, OpenIndexedValidates) {
  EXPECT_EQ(Cursor::OpenIndexed(table_, nullptr, "nope", Value::Str("a"))
                .status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Cursor::OpenIndexed(table_, nullptr, "v", Value::Int(1))
                .status().code(),
            StatusCode::kFailedPrecondition);  // v is not indexed
}

TEST_F(CursorTest, UpdateCurrentLogsAndApplies) {
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db_.Begin());
  {
    ASSERT_OK_AND_ASSIGN(Cursor c, Cursor::OpenIndexed(table_, txn, "k",
                                                       Value::Str("b")));
    ASSERT_TRUE(c.Fetch());
    ASSERT_OK(c.UpdateCurrent({Value::Str("b"), Value::Int(99)}));
    c.Close();
  }
  EXPECT_EQ(txn->log().size(), 1u);
  EXPECT_EQ(txn->log().entries()[0].op, LogOp::kUpdate);
  ASSERT_OK(db_.Commit(txn));
  auto rs = db_.Execute("select v from t where k = 'b'");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(99));
}

TEST_F(CursorTest, UpdateWithoutFetchFails) {
  Cursor c(table_, nullptr);
  EXPECT_EQ(c.UpdateCurrent({Value::Str("x"), Value::Int(0)}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CursorTest, DeleteDuringFullScanContinuesCorrectly) {
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db_.Begin());
  Cursor c(table_, txn);
  int visited = 0, deleted = 0;
  while (c.Fetch()) {
    ++visited;
    if (c.Current().values[0] == Value::Str("a")) {
      ASSERT_OK(c.DeleteCurrent());
      ++deleted;
    }
  }
  EXPECT_EQ(visited, 4);
  EXPECT_EQ(deleted, 2);
  EXPECT_EQ(table_->size(), 2u);
  ASSERT_OK(db_.Commit(txn));
}

TEST_F(CursorTest, DeleteLogIsUndoable) {
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db_.Begin());
  {
    ASSERT_OK_AND_ASSIGN(Cursor c, Cursor::OpenIndexed(table_, txn, "k",
                                                       Value::Str("c")));
    ASSERT_TRUE(c.Fetch());
    ASSERT_OK(c.DeleteCurrent());
  }
  EXPECT_EQ(table_->size(), 3u);
  ASSERT_OK(db_.Abort(txn));  // rollback restores the row
  EXPECT_EQ(table_->size(), 4u);
  auto rs = db_.Execute("select v from t where k = 'c'");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(4));
}

}  // namespace
}  // namespace strip
