// Network front-end (net/): in-process Server + Client integration. The
// server here is the real thing — epoll thread, dispatch lock, durability,
// admission control — just bound to an ephemeral loopback port.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "strip/common/logging.h"
#include "strip/net/client.h"
#include "strip/net/protocol.h"
#include "strip/net/server.h"
#include "strip/viewmaint/rule_gen.h"
#include "tests/test_util.h"

namespace strip {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "strip_net_XXXXXX").string();
    const char* made = ::mkdtemp(tmpl.data());
    STRIP_CHECK_MSG(made != nullptr, "mkdtemp failed");
    dir_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

constexpr const char* kSchema = R"(
  create table quotes (symbol string, price double);
  create index on quotes (symbol);
)";

ServerOptions BaseOptions() {
  ServerOptions o;
  o.schema_sql = kSchema;
  o.feed_tables = {"quotes"};
  o.engine.num_workers = 2;
  return o;
}

FeedRecord Rec(const std::string& sym, double px) {
  FeedRecord r;
  r.values = {Value::Str(sym), Value::Double(px)};
  return r;
}

// Sorted table contents via the wire protocol — the recovery oracle.
std::vector<std::vector<Value>> DumpQuotes(Client& c) {
  auto stmt = c.Prepare("select symbol, price from quotes order by symbol");
  STRIP_CHECK_MSG(stmt.ok(), "prepare failed");
  auto rs = c.Exec(stmt->handle);
  STRIP_CHECK_MSG(rs.ok(), "exec failed");
  return rs->rows;
}

TEST(NetTest, HelloPrepareExecRoundTrip) {
  ASSERT_OK_AND_ASSIGN(auto server, Server::Start(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(auto client,
                       Client::Connect("127.0.0.1", server->port()));
  EXPECT_GT(client->session_id(), 0u);

  // DML through a prepared handle with '?' params.
  ASSERT_OK_AND_ASSIGN(PrepareResponse ins,
                       client->Prepare("insert into quotes values (?, ?)"));
  EXPECT_EQ(ins.num_params, 2u);
  ASSERT_OK_AND_ASSIGN(
      ExecResponse dml,
      client->Exec(ins.handle, {Value::Str("ibm"), Value::Double(50.5)}));
  EXPECT_EQ(dml.affected, 1);

  ASSERT_OK_AND_ASSIGN(
      PrepareResponse sel,
      client->Prepare("select symbol, price from quotes where symbol = ?"));
  EXPECT_EQ(sel.num_params, 1u);
  ASSERT_OK_AND_ASSIGN(ExecResponse rows,
                       client->Exec(sel.handle, {Value::Str("ibm")}));
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0], Value::Str("ibm"));
  EXPECT_EQ(rows.rows[0][1], Value::Double(50.5));
  EXPECT_EQ(rows.columns.size(), 2u);

  EXPECT_OK(client->Ping("token"));

  // Executing a foreign handle is an error, not a crash.
  auto bad = client->Exec(9999, {});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);

  // The connection survives the error frame: still serviceable.
  EXPECT_OK(client->Ping());
  server->Stop();
}

TEST(NetTest, FeedAppendAppliesInArrivalOrder) {
  ASSERT_OK_AND_ASSIGN(auto server, Server::Start(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(auto client,
                       Client::Connect("127.0.0.1", server->port()));

  // Three upserts of the same key in one batch: the last one must win,
  // deterministically, because the server applies in arrival order.
  ASSERT_OK_AND_ASSIGN(
      FeedAppendResponse ack,
      client->FeedAppend(
          "quotes", {Rec("ibm", 1.0), Rec("ibm", 2.0), Rec("ibm", 3.0)}));
  EXPECT_EQ(ack.accepted, 3u);

  auto rows = DumpQuotes(*client);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], Value::Double(3.0));

  // Unknown feed table is a clean error.
  auto bad = client->FeedAppend("nope", {Rec("x", 1.0)});
  EXPECT_FALSE(bad.ok());
  server->Stop();
}

TEST(NetTest, KillAndRecoverRebuildsIdenticalState) {
  TempDir live_dir;
  TempDir crash_dir;
  ServerOptions opts = BaseOptions();
  opts.data_dir = live_dir.path();

  std::vector<std::vector<Value>> before;
  uint64_t last_lsn = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto server, Server::Start(opts));
    ASSERT_OK_AND_ASSIGN(auto client,
                         Client::Connect("127.0.0.1", server->port()));
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK_AND_ASSIGN(
          FeedAppendResponse ack,
          client->FeedAppend("quotes",
                             {Rec("s" + std::to_string(i % 5), i * 1.5)}));
      last_lsn = ack.lsn;
    }
    EXPECT_EQ(last_lsn, 20u);
    before = DumpQuotes(*client);
    ASSERT_EQ(before.size(), 5u);
    // Snapshot the data dir while the server is still alive: Stop() (and
    // the destructor) checkpoint gracefully, so the copy — every acked
    // batch synced, no snapshot, WAL only — is the kill -9 disk image.
    // (The true cross-process kill -9 test is tools/server_smoke.sh.)
    fs::copy(live_dir.path(), crash_dir.path(),
             fs::copy_options::recursive |
                 fs::copy_options::overwrite_existing);
    server->Stop();
  }

  ServerOptions crash_opts = BaseOptions();
  crash_opts.data_dir = crash_dir.path();
  ASSERT_OK_AND_ASSIGN(auto reborn, Server::Start(crash_opts));
  EXPECT_FALSE(reborn->recovery_stats().snapshot_loaded);
  EXPECT_EQ(reborn->recovery_stats().entries_replayed, last_lsn);
  EXPECT_EQ(reborn->recovery_stats().next_lsn, last_lsn + 1);
  ASSERT_OK_AND_ASSIGN(auto client,
                       Client::Connect("127.0.0.1", reborn->port()));
  EXPECT_EQ(DumpQuotes(*client), before);

  // Checkpoint, append past it, recover again: snapshot + tail.
  ASSERT_OK_AND_ASSIGN(AdminResponse cp, client->Admin(AdminOp::kCheckpoint));
  EXPECT_EQ(cp.lsn, last_lsn);
  ASSERT_OK(client->FeedAppend("quotes", {Rec("tail", 9.0)}).status());
  before = DumpQuotes(*client);
  reborn->Stop();

  ASSERT_OK_AND_ASSIGN(auto third, Server::Start(crash_opts));
  EXPECT_TRUE(third->recovery_stats().snapshot_loaded);
  ASSERT_OK_AND_ASSIGN(auto c3, Client::Connect("127.0.0.1", third->port()));
  EXPECT_EQ(DumpQuotes(*c3), before);
  third->Stop();
}

// REVIEW fix (high): a malformed record anywhere in a feed batch must be
// refused BEFORE the first WAL append. Were it logged first, every future
// recovery would replay the same validation failure and the server could
// never boot again — a remotely triggerable, persistent recovery failure.
TEST(NetTest, MalformedFeedBatchIsRefusedBeforeTheWal) {
  TempDir live_dir;
  TempDir crash_dir;
  ServerOptions opts = BaseOptions();
  opts.data_dir = live_dir.path();
  ASSERT_OK_AND_ASSIGN(auto server, Server::Start(opts));
  ASSERT_OK_AND_ASSIGN(auto client,
                       Client::Connect("127.0.0.1", server->port()));

  ASSERT_OK(client->FeedAppend("quotes", {Rec("ibm", 1.0)}).status());
  uint64_t wal_bytes = server->durable()->wal_bytes();
  uint64_t next_lsn = server->durable()->next_lsn();

  // Wrong arity mid-batch: the whole batch is rejected, all-or-nothing.
  FeedRecord bad_arity;
  bad_arity.values = {Value::Str("x")};
  auto r1 = client->FeedAppend(
      "quotes", {Rec("good1", 2.0), bad_arity, Rec("good2", 3.0)});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  // Wrong type (string where the schema says double): same refusal.
  FeedRecord bad_type;
  bad_type.values = {Value::Str("y"), Value::Str("not a price")};
  auto r2 = client->FeedAppend("quotes", {bad_type});
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  // Nothing reached the WAL or the table — not even the valid records of
  // the poisoned batch.
  EXPECT_EQ(server->durable()->wal_bytes(), wal_bytes);
  EXPECT_EQ(server->durable()->next_lsn(), next_lsn);
  EXPECT_EQ(DumpQuotes(*client).size(), 1u);

  // The connection survives and valid traffic still flows...
  ASSERT_OK(client->FeedAppend("quotes", {Rec("hp", 4.0)}).status());
  auto before = DumpQuotes(*client);

  // ...and — the actual point — a server restarted from this WAL boots
  // and replays cleanly. Copy the dir pre-Stop for the kill -9 image.
  fs::copy(live_dir.path(), crash_dir.path(),
           fs::copy_options::recursive | fs::copy_options::overwrite_existing);
  server->Stop();

  ServerOptions crash_opts = BaseOptions();
  crash_opts.data_dir = crash_dir.path();
  ASSERT_OK_AND_ASSIGN(auto reborn, Server::Start(crash_opts));
  EXPECT_EQ(reborn->recovery_stats().entries_skipped, 0u);
  ASSERT_OK_AND_ASSIGN(auto c2, Client::Connect("127.0.0.1", reborn->port()));
  EXPECT_EQ(DumpQuotes(*c2), before);
  reborn->Stop();
}

// REVIEW fix (medium): a client that pipelines requests with large replies
// and never reads must hit backpressure — the server stops decoding its
// requests while unflushed output is over the high water mark, instead of
// growing outbuf without bound. Every reply must still arrive, in order,
// once the client does read.
TEST(NetTest, BackpressurePausesAPipeliningSlowReader) {
  ASSERT_OK_AND_ASSIGN(auto server, Server::Start(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(auto loader,
                       Client::Connect("127.0.0.1", server->port()));

  // ~800 KB of rows: 800 symbols carrying a 1 KB payload each.
  std::vector<FeedRecord> rows;
  for (int i = 0; i < 800; ++i) {
    rows.push_back(
        Rec(std::string(1000, 'x') + std::to_string(i), i * 1.0));
  }
  ASSERT_OK(loader->FeedAppend("quotes", rows).status());

  // Raw socket so we can pipeline without reading (Client is strict
  // request/response).
  ASSERT_OK_AND_ASSIGN(Socket sock,
                       Socket::Connect("127.0.0.1", server->port()));
  auto read_frame = [&]() -> Result<Frame> {
    char header[kFrameHeaderSize];
    STRIP_RETURN_IF_ERROR(sock.ReadFully(header, sizeof(header)));
    uint32_t len = 0;
    std::memcpy(&len, header + 12, sizeof(len));
    std::string whole(header, sizeof(header));
    whole.resize(kFrameHeaderSize + len);
    STRIP_RETURN_IF_ERROR(
        sock.ReadFully(whole.data() + kFrameHeaderSize, len));
    size_t pos = 0;
    Frame f;
    std::string err;
    if (TryDecodeFrame(whole, &pos, &f, &err) != FrameDecode::kFrame) {
      return Status::Internal("bad frame in test: " + err);
    }
    return f;
  };

  Frame hello;
  hello.type = FrameType::kHello;
  hello.seq = 1;
  hello.payload = Encode(HelloRequest{});
  ASSERT_OK(sock.WriteAll(EncodeFrame(hello)));
  ASSERT_OK_AND_ASSIGN(Frame hello_ok, read_frame());
  ASSERT_EQ(hello_ok.type, FrameType::kHelloOk);

  Frame prep;
  prep.type = FrameType::kPrepare;
  prep.seq = 2;
  prep.payload = Encode(PrepareRequest{"select symbol, price from quotes"});
  ASSERT_OK(sock.WriteAll(EncodeFrame(prep)));
  ASSERT_OK_AND_ASSIGN(Frame prepped, read_frame());
  ASSERT_EQ(prepped.type, FrameType::kPrepared);
  ASSERT_OK_AND_ASSIGN(PrepareResponse handle,
                       DecodePrepareResponse(prepped.payload));

  // Pipeline 60 Execs (~48 MB of replies, far past the 4 MiB high water
  // plus any kernel socket buffering) in one write, reading nothing.
  constexpr int kPipelined = 60;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) {
    Frame exec;
    exec.type = FrameType::kExec;
    exec.seq = 3 + static_cast<uint64_t>(i);
    exec.payload = Encode(ExecRequest{handle.handle, {}});
    ASSERT_OK(AppendFrame(exec, &burst));
  }
  ASSERT_OK(sock.WriteAll(burst));

  // The server must pause this connection rather than buffer ~48 MB.
  Counter* pauses = server->db().metrics().counter(
      "server.backpressure_pauses");
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (pauses->Get() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "backpressure never engaged";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Now read everything: every reply arrives, in seq order, complete.
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_OK_AND_ASSIGN(Frame reply, read_frame());
    ASSERT_EQ(reply.type, FrameType::kRows) << "reply " << i;
    EXPECT_EQ(reply.seq, 3 + static_cast<uint64_t>(i));
    ASSERT_OK_AND_ASSIGN(ExecResponse rs, DecodeExecResponse(reply.payload));
    EXPECT_EQ(rs.rows.size(), 800u) << "reply " << i;
  }
  EXPECT_GE(pauses->Get(), 1u);
  server->Stop();
}

TEST(NetTest, CorruptFrameDropsTheConnection) {
  ASSERT_OK_AND_ASSIGN(auto server, Server::Start(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(Socket sock,
                       Socket::Connect("127.0.0.1", server->port()));
  ASSERT_OK(sock.WriteAll("this is not a frame"));
  // The server must close on us — ReadFully's clean-close error, not data.
  char buf[16];
  EXPECT_FALSE(sock.ReadFully(buf, sizeof(buf)).ok());
  server->Stop();
}

TEST(NetTest, RequestsBeforeHelloAreRejected) {
  ASSERT_OK_AND_ASSIGN(auto server, Server::Start(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(Socket sock,
                       Socket::Connect("127.0.0.1", server->port()));
  Frame f;
  f.type = FrameType::kPrepare;
  f.seq = 1;
  f.payload = Encode(PrepareRequest{"select 1"});
  ASSERT_OK(sock.WriteAll(EncodeFrame(f)));

  // Expect an error frame back; the header is 20 bytes + payload.
  char header[kFrameHeaderSize];
  ASSERT_OK(sock.ReadFully(header, sizeof(header)));
  uint32_t len = 0;
  std::memcpy(&len, header + 12, sizeof(len));
  std::string payload(len, '\0');
  ASSERT_OK(sock.ReadFully(payload.data(), len));
  EXPECT_EQ(static_cast<FrameType>(header[2]), FrameType::kError);
  ASSERT_OK_AND_ASSIGN(ErrorResponse err, DecodeErrorResponse(payload));
  EXPECT_EQ(err.code, StatusCode::kFailedPrecondition);
  server->Stop();
}

TEST(NetTest, AdminMetricsAndHealthReturnJson) {
  ASSERT_OK_AND_ASSIGN(auto server, Server::Start(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(auto client,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK_AND_ASSIGN(AdminResponse metrics, client->Admin(AdminOp::kMetrics));
  EXPECT_NE(metrics.body.find("server.requests"), std::string::npos);
  ASSERT_OK_AND_ASSIGN(AdminResponse health, client->Admin(AdminOp::kHealth));
  EXPECT_NE(health.body.find("\"state\""), std::string::npos);
  ASSERT_OK_AND_ASSIGN(AdminResponse drain, client->Admin(AdminOp::kDrain));
  (void)drain;
  server->Stop();
}

TEST(NetTest, ShutdownOpStopsTheServer) {
  ASSERT_OK_AND_ASSIGN(auto server, Server::Start(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(auto client,
                       Client::Connect("127.0.0.1", server->port()));
  ASSERT_OK(client->Admin(AdminOp::kShutdown).status());
  server->Wait();
  EXPECT_TRUE(server->stopped());
}

// Admission control end to end: a view-maintenance rule with a delay
// window gives the watchdog staleness signal, an absurdly tight SLO trips
// it, and low-priority work gets shed while normal priority keeps flowing.
TEST(NetTest, ShedRefusesLowPriorityWorkUnderOverload) {
  ServerOptions opts = BaseOptions();
  opts.schema_sql = R"(
    create table quotes (symbol string, price double);
    create index on quotes (symbol);
    create materialized view quote_stats as
      select symbol, sum(price) as total, count(*) as n
      from quotes group by symbol;
  )";
  opts.bootstrap = [](Database& db) -> Status {
    RuleGenOptions gen;
    gen.delay_seconds = 0.01;
    return GenerateMaintenanceRule(db, "quote_stats", "quotes", gen).status();
  };
  opts.slo.staleness_p99_us = 1;  // any rule commit at all breaches
  opts.slo.trip_intervals = 1;
  opts.watchdog_period_seconds = 0.05;
  ASSERT_OK_AND_ASSIGN(auto server, Server::Start(opts));

  ASSERT_OK_AND_ASSIGN(
      auto normal, Client::Connect("127.0.0.1", server->port(),
                                   SessionPriority::kNormal));
  ASSERT_OK_AND_ASSIGN(
      auto low, Client::Connect("127.0.0.1", server->port(),
                                SessionPriority::kLow));

  // Pump feed traffic until the watchdog trips (bounded; SLO of 1us means
  // a single maintained batch is enough once an interval ticks).
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  int iter = 0;
  while (server->admission_state() != WatchdogState::kShed) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "watchdog never tripped";
    // Prices must actually CHANGE: an upsert to the same value produces an
    // empty update delta and the maintenance rule never fires (no
    // staleness signal for the watchdog to judge).
    ++iter;
    ASSERT_OK(normal
                  ->FeedAppend("quotes", {Rec("ibm", 1.0 + iter * 0.25),
                                          Rec("hp", 2.0 + iter * 0.125)})
                  .status());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Established low-priority session: further work is deferred with the
  // retryable code, and the metrics count the shed.
  auto shed = low->FeedAppend("quotes", {Rec("ibm", 5.0)});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kAborted);

  // New low-priority session: refused outright at Hello.
  auto refused = Client::Connect("127.0.0.1", server->port(),
                                 SessionPriority::kLow);
  EXPECT_FALSE(refused.ok());

  // Normal priority keeps flowing through the same overload.
  EXPECT_OK(normal->FeedAppend("quotes", {Rec("sun", 3.0)}).status());
  EXPECT_OK(normal->Ping());
  server->Stop();
}

// Protocol payload decoders are strict: truncation at every byte of a
// real request payload fails cleanly, and trailing garbage is rejected.
TEST(NetProtocolTest, DecodersRejectTruncationAndTrailingBytes) {
  ExecRequest req;
  req.handle = 77;
  req.params = {Value::Str("ibm"), Value::Double(1.5), Value::Int(-2),
                Value::Null()};
  std::string good = Encode(req);

  ASSERT_OK_AND_ASSIGN(ExecRequest back, DecodeExecRequest(good));
  EXPECT_EQ(back.handle, 77u);
  ASSERT_EQ(back.params.size(), 4u);
  EXPECT_EQ(back.params[1], Value::Double(1.5));

  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeExecRequest(good.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes decoded";
  }
  EXPECT_FALSE(DecodeExecRequest(good + "x").ok()) << "trailing byte kept";

  FeedAppendRequest feed;
  feed.table = "quotes";
  feed.records = {Rec("ibm", 1.0), Rec("hp", 2.0)};
  std::string fgood = Encode(feed);
  ASSERT_OK_AND_ASSIGN(FeedAppendRequest fback, DecodeFeedAppendRequest(fgood));
  EXPECT_EQ(fback.records.size(), 2u);
  for (size_t cut = 0; cut < fgood.size(); ++cut) {
    EXPECT_FALSE(DecodeFeedAppendRequest(fgood.substr(0, cut)).ok())
        << "prefix of " << cut << " bytes decoded";
  }

  // Unknown enumerators are rejected, not truncated into range.
  std::string hello = Encode(HelloRequest{});
  hello[1] = 0x7f;  // priority byte
  EXPECT_FALSE(DecodeHelloRequest(hello).ok());

  std::string admin = Encode(AdminRequest{});
  admin[0] = 0x7f;  // op byte
  EXPECT_FALSE(DecodeAdminRequest(admin).ok());
}

TEST(NetProtocolTest, ErrorResponseRoundTripsStatus) {
  Status original = Status::Aborted("shed: retry later");
  ErrorResponse e;
  e.code = original.code();
  e.message = original.message();
  ASSERT_OK_AND_ASSIGN(ErrorResponse back, DecodeErrorResponse(Encode(e)));
  Status round = ToStatus(back);
  EXPECT_EQ(round.code(), StatusCode::kAborted);
  EXPECT_EQ(round.message(), "shed: retry later");
}

}  // namespace
}  // namespace strip
