// Unique-transaction machinery tests: the Appendix A bound-table
// partitioning semantics and the per-function hash table of queued tasks
// (§6.3), including concurrent merge/start races.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "strip/rules/unique_manager.h"
#include "tests/test_util.h"

namespace strip {
namespace {

/// Builds a fully materialized bound table with the given columns/rows.
TempTable MakeBound(const std::string& name,
                    const std::vector<std::string>& columns,
                    const std::vector<std::vector<Value>>& rows) {
  Schema s;
  for (const auto& c : columns) s.AddColumn(c, ValueType::kString);
  TempTable t = TempTable::Materialized(name, std::move(s));
  for (const auto& row : rows) {
    t.Append(TempTuple{{}, row});
  }
  return t;
}

std::vector<Value> Strs(std::initializer_list<const char*> vs) {
  std::vector<Value> out;
  for (const char* v : vs) out.push_back(Value::Str(v));
  return out;
}

TEST(PartitionTest, EmptyUniqueColumnsGivesOnePartition) {
  BoundTableSet set;
  ASSERT_OK(set.Add(MakeBound("m", {"comp"}, {Strs({"c1"}), Strs({"c2"})})));
  ASSERT_OK_AND_ASSIGN(auto parts,
                       PartitionByUniqueColumns(std::move(set), {}));
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_TRUE(parts[0].first.empty());
  EXPECT_EQ(parts[0].second.Find("m")->size(), 2u);
}

TEST(PartitionTest, SingleTablePartitionsByDistinctValues) {
  // The Figure 5(c) scenario: matches rows split per composite.
  BoundTableSet set;
  ASSERT_OK(set.Add(MakeBound("matches", {"comp", "sym"},
                              {Strs({"c1", "s1"}), Strs({"c2", "s1"}),
                               Strs({"c2", "s2"})})));
  ASSERT_OK_AND_ASSIGN(auto parts,
                       PartitionByUniqueColumns(std::move(set), {"comp"}));
  ASSERT_EQ(parts.size(), 2u);
  size_t c1 = parts[0].first[0] == Value::Str("c1") ? 0 : 1;
  size_t c2 = 1 - c1;
  EXPECT_EQ(parts[c1].second.Find("matches")->size(), 1u);
  EXPECT_EQ(parts[c2].second.Find("matches")->size(), 2u);
}

TEST(PartitionTest, TablesWithoutUniqueColumnsArePassedWhole) {
  // Appendix A: T^a tables go to every partition in full.
  BoundTableSet set;
  ASSERT_OK(set.Add(MakeBound("m", {"comp"}, {Strs({"c1"}), Strs({"c2"})})));
  ASSERT_OK(set.Add(MakeBound("aux", {"x"}, {Strs({"a"}), Strs({"b"})})));
  ASSERT_OK_AND_ASSIGN(auto parts,
                       PartitionByUniqueColumns(std::move(set), {"comp"}));
  ASSERT_EQ(parts.size(), 2u);
  for (const auto& [key, tables] : parts) {
    EXPECT_EQ(tables.Find("m")->size(), 1u);
    EXPECT_EQ(tables.Find("aux")->size(), 2u);
  }
}

TEST(PartitionTest, MultiColumnKeyWithinOneTable) {
  BoundTableSet set;
  ASSERT_OK(set.Add(MakeBound("m", {"a", "b"},
                              {Strs({"x", "1"}), Strs({"x", "2"}),
                               Strs({"x", "1"})})));
  ASSERT_OK_AND_ASSIGN(auto parts,
                       PartitionByUniqueColumns(std::move(set), {"a", "b"}));
  ASSERT_EQ(parts.size(), 2u);
  for (const auto& [key, tables] : parts) {
    ASSERT_EQ(key.size(), 2u);
    if (key[1] == Value::Str("1")) {
      EXPECT_EQ(tables.Find("m")->size(), 2u);
    } else {
      EXPECT_EQ(tables.Find("m")->size(), 1u);
    }
  }
}

TEST(PartitionTest, UniqueColumnsSpanningTwoTablesCrossProduct) {
  // Appendix A: the key space is the projection of the product B of the
  // tables holding unique columns.
  BoundTableSet set;
  ASSERT_OK(set.Add(MakeBound("m1", {"a"}, {Strs({"x"}), Strs({"y"})})));
  ASSERT_OK(set.Add(MakeBound("m2", {"b"}, {Strs({"1"}), Strs({"2"})})));
  ASSERT_OK_AND_ASSIGN(auto parts,
                       PartitionByUniqueColumns(std::move(set), {"a", "b"}));
  ASSERT_EQ(parts.size(), 4u);  // {x,y} x {1,2}
  for (const auto& [key, tables] : parts) {
    EXPECT_EQ(tables.Find("m1")->size(), 1u);
    EXPECT_EQ(tables.Find("m2")->size(), 1u);
  }
}

TEST(PartitionTest, KeyOrderFollowsUniqueColumnsDeclaration) {
  BoundTableSet set;
  ASSERT_OK(set.Add(MakeBound("m", {"a", "b"}, {Strs({"x", "1"})})));
  ASSERT_OK_AND_ASSIGN(auto parts,
                       PartitionByUniqueColumns(std::move(set), {"b", "a"}));
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].first[0], Value::Str("1"));  // b first
  EXPECT_EQ(parts[0].first[1], Value::Str("x"));
}

TEST(PartitionTest, EmptyUniqueTableYieldsNoPartitions) {
  BoundTableSet set;
  ASSERT_OK(set.Add(MakeBound("m", {"comp"}, {})));
  ASSERT_OK_AND_ASSIGN(auto parts,
                       PartitionByUniqueColumns(std::move(set), {"comp"}));
  EXPECT_TRUE(parts.empty());
}

TEST(PartitionTest, Errors) {
  {
    BoundTableSet set;
    ASSERT_OK(set.Add(MakeBound("m", {"a"}, {Strs({"x"})})));
    EXPECT_EQ(PartitionByUniqueColumns(std::move(set), {"nope"})
                  .status().code(),
              StatusCode::kNotFound);
  }
  {
    BoundTableSet set;
    ASSERT_OK(set.Add(MakeBound("m1", {"a"}, {Strs({"x"})})));
    ASSERT_OK(set.Add(MakeBound("m2", {"a"}, {Strs({"y"})})));
    EXPECT_EQ(PartitionByUniqueColumns(std::move(set), {"a"})
                  .status().code(),
              StatusCode::kInvalidArgument);  // ambiguous column home
  }
}

// ---------------------------------------------------------------------------
// UniqueTxnManager
// ---------------------------------------------------------------------------

class UniqueTxnManagerTest : public ::testing::Test {
 protected:
  BoundTableSet OneRowSet(const char* comp) {
    BoundTableSet set;
    Status st = set.Add(MakeBound("m", {"comp"}, {Strs({comp})}));
    EXPECT_TRUE(st.ok());
    return set;
  }

  UniqueTxnManager::TaskFactory Factory() {
    return [this](const std::vector<Value>&, BoundTableSet&& tables) {
      auto task = std::make_shared<TaskControlBlock>(next_id_++);
      task->function_name = "fn";
      task->bound_tables = std::move(tables);
      return task;
    };
  }

  UniqueTxnManager mgr_;
  uint64_t next_id_ = 1;
};

TEST_F(UniqueTxnManagerTest, FirstFiringCreatesTask) {
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                    OneRowSet("c1"), 0, Factory()));
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->is_unique);
  EXPECT_EQ(t->unique_key[0], Value::Str("c1"));
  EXPECT_EQ(mgr_.NumQueued("fn"), 1u);
}

TEST_F(UniqueTxnManagerTest, SecondFiringMergesIntoQueuedTask) {
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t1, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                     OneRowSet("c1"), 0, Factory()));
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t2, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                     OneRowSet("c1"), 0, Factory()));
  EXPECT_EQ(t2, nullptr);  // merged, nothing to submit
  EXPECT_EQ(t1->bound_tables.Find("m")->size(), 2u);
  EXPECT_EQ(mgr_.merge_count(), 1u);
  EXPECT_EQ(mgr_.NumQueued("fn"), 1u);
}

TEST_F(UniqueTxnManagerTest, DifferentKeysGetDifferentTasks) {
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t1, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                     OneRowSet("c1"), 0, Factory()));
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t2, mgr_.MergeOrCreate("fn", {Value::Str("c2")},
                                     OneRowSet("c2"), 0, Factory()));
  EXPECT_NE(t1, nullptr);
  EXPECT_NE(t2, nullptr);
  EXPECT_NE(t1, t2);
  EXPECT_EQ(mgr_.NumQueued("fn"), 2u);
}

TEST_F(UniqueTxnManagerTest, DifferentFunctionsAreIndependent) {
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t1, mgr_.MergeOrCreate("fn_a", {}, OneRowSet("c"), 0, Factory()));
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t2, mgr_.MergeOrCreate("fn_b", {}, OneRowSet("c"), 0, Factory()));
  EXPECT_NE(t1, nullptr);
  EXPECT_NE(t2, nullptr);
  EXPECT_EQ(mgr_.NumQueued("fn_a"), 1u);
  EXPECT_EQ(mgr_.NumQueued("fn_b"), 1u);
}

TEST_F(UniqueTxnManagerTest, StartedTaskNoLongerAcceptsMerges) {
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t1, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                     OneRowSet("c1"), 0, Factory()));
  ASSERT_TRUE(t1->TryStart());  // executor picks it up
  // A firing after the start must create a FRESH task (§2).
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t2, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                     OneRowSet("c1"), 0, Factory()));
  ASSERT_NE(t2, nullptr);
  EXPECT_NE(t1, t2);
  EXPECT_EQ(t1->bound_tables.Find("m")->size(), 1u);  // untouched
}

TEST_F(UniqueTxnManagerTest, OnTaskStartRemovesHashEntry) {
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t1, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                     OneRowSet("c1"), 0, Factory()));
  mgr_.OnTaskStart(*t1);
  EXPECT_EQ(mgr_.NumQueued("fn"), 0u);
  mgr_.OnTaskStart(*t1);  // idempotent
  // Next firing creates a new task.
  ASSERT_OK_AND_ASSIGN(
      TaskPtr t2, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                     OneRowSet("c1"), 0, Factory()));
  EXPECT_NE(t2, nullptr);
  // OnTaskStart for a superseded task must not remove the new entry.
  mgr_.OnTaskStart(*t1);
  EXPECT_EQ(mgr_.NumQueued("fn"), 1u);
}

TEST_F(UniqueTxnManagerTest, ConcurrentMergesNeverLoseRows) {
  // Threads fire the same (function, key) repeatedly while another thread
  // keeps starting the queued tasks. Every fired row must end up in
  // exactly one task's bound table.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<uint64_t> ids{1};
  std::atomic<long> rows_in_tasks{0};
  SpinLock tasks_lock;
  std::vector<TaskPtr> created;

  auto factory = [&](const std::vector<Value>&, BoundTableSet&& tables) {
    auto task = std::make_shared<TaskControlBlock>(ids.fetch_add(1));
    task->function_name = "fn";
    task->bound_tables = std::move(tables);
    SpinLockGuard g(tasks_lock);
    created.push_back(task);
    return task;
  };

  std::atomic<bool> stop{false};
  std::thread starter([&] {
    while (!stop.load()) {
      TaskPtr victim;
      {
        SpinLockGuard g(tasks_lock);
        for (auto& t : created) {
          SpinLockGuard tg(t->merge_lock);
          if (!t->started) {
            victim = t;
            break;
          }
        }
      }
      if (victim != nullptr && victim->TryStart()) {
        mgr_.OnTaskStart(*victim);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> firers;
  for (int t = 0; t < kThreads; ++t) {
    firers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto r = mgr_.MergeOrCreate("fn", {Value::Str("k")},
                                    OneRowSet("k"), 0, factory);
        ASSERT_TRUE(r.ok());
      }
    });
  }
  for (auto& t : firers) t.join();
  stop = true;
  starter.join();

  long total = 0;
  for (auto& t : created) {
    total += static_cast<long>(t->bound_tables.Find("m")->size());
  }
  EXPECT_EQ(total, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// COW record pinning (§6.1, chaos satellite): bound tables pin superseded
// record versions; when a unique task retires — whether its firings were
// merged-then-fired or merged-then-superseded — every pin must be dropped
// exactly once. use_count is the ground truth.
// ---------------------------------------------------------------------------

/// A bound table whose single column reads through a record slot, pinning
/// `rec` the way real transition-table-derived bound tables do.
TempTable RecordBacked(const std::string& name, const RecordRef& rec) {
  Schema s;
  s.AddColumn("comp", ValueType::kString);
  TempTable t(name, std::move(s), {TempColumnMap{0, 0}}, /*num_slots=*/1,
              /*num_extra=*/0);
  t.Append(TempTuple{{rec}, {}});
  return t;
}

TEST_F(UniqueTxnManagerTest, MergedThenFiredUnpinsExactlyOnce) {
  RecordRef r1 = MakeRecord({Value::Str("c1")});
  RecordRef r2 = MakeRecord({Value::Str("c1")});
  {
    BoundTableSet s1;
    ASSERT_OK(s1.Add(RecordBacked("m", r1)));
    ASSERT_OK_AND_ASSIGN(
        TaskPtr task, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                         std::move(s1), 0, Factory()));
    ASSERT_NE(task, nullptr);
    BoundTableSet s2;
    ASSERT_OK(s2.Add(RecordBacked("m", r2)));
    ASSERT_OK_AND_ASSIGN(
        TaskPtr merged, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                           std::move(s2), 0, Factory()));
    EXPECT_EQ(merged, nullptr);
    // One pin each: ours plus exactly one inside the queued task — the
    // merge must MOVE the second firing's tuples, not copy them.
    EXPECT_EQ(r1.use_count(), 2);
    EXPECT_EQ(r2.use_count(), 2);
    EXPECT_EQ(task->bound_tables.Find("m")->size(), 2u);
    // Fire and retire.
    ASSERT_TRUE(task->TryStart());
    mgr_.OnTaskStart(*task);
  }
  // The task was the last owner; both versions fully unpinned.
  EXPECT_EQ(r1.use_count(), 1);
  EXPECT_EQ(r2.use_count(), 1);
}

TEST_F(UniqueTxnManagerTest, MergedThenSupersededUnpinsExactlyOnce) {
  RecordRef r1 = MakeRecord({Value::Str("c1")});
  RecordRef r2 = MakeRecord({Value::Str("c1")});
  RecordRef r3 = MakeRecord({Value::Str("c1")});
  {
    BoundTableSet s1;
    ASSERT_OK(s1.Add(RecordBacked("m", r1)));
    ASSERT_OK_AND_ASSIGN(
        TaskPtr t1, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                       std::move(s1), 0, Factory()));
    BoundTableSet s2;
    ASSERT_OK(s2.Add(RecordBacked("m", r2)));
    ASSERT_OK_AND_ASSIGN(
        TaskPtr merged, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                           std::move(s2), 0, Factory()));
    EXPECT_EQ(merged, nullptr);

    // The task starts; a firing racing the start must not land in it.
    ASSERT_TRUE(t1->TryStart());
    BoundTableSet s3;
    ASSERT_OK(s3.Add(RecordBacked("m", r3)));
    ASSERT_OK_AND_ASSIGN(
        TaskPtr t2, mgr_.MergeOrCreate("fn", {Value::Str("c1")},
                                       std::move(s3), 0, Factory()));
    ASSERT_NE(t2, nullptr);  // superseding task
    mgr_.OnTaskStart(*t1);

    // r3 is pinned by the superseding task only — never copied into t1.
    EXPECT_EQ(t1->bound_tables.Find("m")->size(), 2u);
    EXPECT_EQ(t2->bound_tables.Find("m")->size(), 1u);
    EXPECT_EQ(r1.use_count(), 2);
    EXPECT_EQ(r2.use_count(), 2);
    EXPECT_EQ(r3.use_count(), 2);

    ASSERT_TRUE(t2->TryStart());
    mgr_.OnTaskStart(*t2);
  }
  EXPECT_EQ(r1.use_count(), 1);
  EXPECT_EQ(r2.use_count(), 1);
  EXPECT_EQ(r3.use_count(), 1);
}

}  // namespace
}  // namespace strip
