// Verifies the §6.1 storage claims THROUGH the SQL path: query outputs
// share record storage with base tables (no value copying for plain
// column selections), computed columns are materialized, and bound tables
// keep superseded record versions alive across transactions.

#include <gtest/gtest.h>

#include "strip/engine/database.h"
#include "tests/test_util.h"

namespace strip {
namespace {

class PointerLayoutTest : public ::testing::Test {
 protected:
  PointerLayoutTest() {
    Database::Options o;
    o.advance_clock_by_cost = false;
    db_ = std::make_unique<Database>(o);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PointerLayoutTest, SelectOfBaseColumnsSharesRecords) {
  ASSERT_OK(db_->ExecuteScript(R"(
    create table t (k string, v double);
    insert into t values ('a', 1.0), ('b', 2.0);
  )"));
  Table* t = db_->catalog().FindTable("t");
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db_->Begin());
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       Parser::ParseStatement("select k, v from t"));
  ASSERT_OK_AND_ASSIGN(TempTable result,
                       db_->Query(txn, std::get<SelectStmt>(stmt)));
  ASSERT_OK(db_->Commit(txn));

  // Pure column selections are pointer-backed: one slot, no extras, and
  // the slot IS the base table's record object.
  EXPECT_EQ(result.num_slots(), 1);
  EXPECT_EQ(result.num_extra(), 0);
  ASSERT_EQ(result.size(), 2u);
  const Record* base_rec = t->rows().begin()->rec.get();
  EXPECT_EQ(result.tuples()[0].slots[0].get(), base_rec);
}

TEST_F(PointerLayoutTest, ComputedColumnsAreMaterialized) {
  ASSERT_OK(db_->ExecuteScript(R"(
    create table t (k string, v double);
    insert into t values ('a', 1.0);
  )"));
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db_->Begin());
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parser::ParseStatement("select k, v * 2 as dbl from t"));
  ASSERT_OK_AND_ASSIGN(TempTable result,
                       db_->Query(txn, std::get<SelectStmt>(stmt)));
  ASSERT_OK(db_->Commit(txn));

  // k stays pointer-backed; the computed column gets one extra slot —
  // exactly the paper's "aggregate, computed, or timestamp attributes"
  // exception (§6.1).
  EXPECT_EQ(result.num_slots(), 1);
  EXPECT_EQ(result.num_extra(), 1);
  EXPECT_FALSE(result.column_map()[0].materialized());
  EXPECT_TRUE(result.column_map()[1].materialized());
  EXPECT_DOUBLE_EQ(result.Get(0, 1).as_double(), 2.0);
}

TEST_F(PointerLayoutTest, JoinOutputPointsIntoBothTables) {
  // The paper's V(A,B,C,D,E) example: the join output carries one pointer
  // per contributing table, and a table contributing no selected
  // attributes gets no slot.
  ASSERT_OK(db_->ExecuteScript(R"(
    create table r (a int, b int, c string);
    create table s (c string, d string);
    create table u (d string, e int);
    insert into r values (1, 2, 'c1');
    insert into s values ('c1', 'd1');
    insert into u values ('d1', 5);
  )"));
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db_->Begin());
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parser::ParseStatement("select a, b, r.c, u.d, e from r, s, u "
                             "where r.c = s.c and s.d = u.d"));
  ASSERT_OK_AND_ASSIGN(TempTable result,
                       db_->Query(txn, std::get<SelectStmt>(stmt)));
  ASSERT_OK(db_->Commit(txn));

  ASSERT_EQ(result.size(), 1u);
  // Only r and u contribute selected attributes: two slots, zero extras —
  // "no pointer to a tuple in S need be stored" (§6.1).
  EXPECT_EQ(result.num_slots(), 2);
  EXPECT_EQ(result.num_extra(), 0);
  const Record* r_rec = db_->catalog().FindTable("r")->rows().begin()
                            ->rec.get();
  const Record* u_rec = db_->catalog().FindTable("u")->rows().begin()
                            ->rec.get();
  bool shares_r = result.tuples()[0].slots[0].get() == r_rec ||
                  result.tuples()[0].slots[1].get() == r_rec;
  bool shares_u = result.tuples()[0].slots[0].get() == u_rec ||
                  result.tuples()[0].slots[1].get() == u_rec;
  EXPECT_TRUE(shares_r);
  EXPECT_TRUE(shares_u);
}

TEST_F(PointerLayoutTest, BoundTableSeesBindTimeStateAfterLaterChanges) {
  // End-to-end §6.1 retention: a rule binds rows, the base row is then
  // updated AND deleted by later transactions, and the action still sees
  // the bind-time images.
  ASSERT_OK(db_->ExecuteScript(R"(
    create table t (k string, v double);
    create table seen (k string, v double);
    insert into t values ('a', 1.0);
  )"));
  ASSERT_OK(db_->RegisterFunction("snap", [](FunctionContext& ctx) {
    const TempTable* b = ctx.BoundTable("b");
    return ctx.Exec("insert into seen values ('" +
                    b->Get(0, 0).as_string() + "', " +
                    b->Get(0, 1).ToString() + ")")
        .status();
  }));
  ASSERT_OK(db_->Execute(R"(
    create rule r on t when updated v
    if select new.k as k, new.v as v from new bind as b
    then execute snap unique after 1.0 seconds
  )").status());

  ASSERT_OK(db_->Execute("update t set v = 42.0 where k = 'a'").status());
  // Before the delayed action runs, mutate and delete the base row. The
  // rule must not re-fire for these (they change v, so deactivate first).
  ASSERT_OK(db_->rules().SetRuleEnabled("r", false));
  ASSERT_OK(db_->Execute("update t set v = 99.0 where k = 'a'").status());
  ASSERT_OK(db_->Execute("delete from t where k = 'a'").status());
  db_->simulated()->RunUntilQuiescent();

  auto rs = db_->Execute("select k, v from seen");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rs->rows[0][1].as_double(), 42.0);  // bind-time image
}

}  // namespace
}  // namespace strip
