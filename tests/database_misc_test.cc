// Database facade behaviors not covered elsewhere: auto-transaction
// statement execution, error paths, rule failures aborting the triggering
// commit, rules on dropped tables, scheduling-policy options, script
// semantics, function registries.

#include <gtest/gtest.h>

#include "strip/engine/database.h"
#include "tests/test_util.h"

namespace strip {
namespace {

TEST(DatabaseMiscTest, ExecuteAutoAbortsFailedStatement) {
  Database db;
  ASSERT_OK(db.ExecuteScript(
      "create table t (v int); insert into t values (1)"));
  // Division by zero mid-update: the statement fails and its transaction
  // rolls back, leaving the table untouched.
  auto r = db.Execute("update t set v = 1 / (v - 1)");
  EXPECT_FALSE(r.ok());
  auto rs = db.Execute("select v from t");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(1));
}

TEST(DatabaseMiscTest, ExecuteScriptStopsAtFirstError) {
  Database db;
  Status st = db.ExecuteScript(R"(
    create table a (v int);
    create table a (v int);
    create table b (v int);
  )");
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_NE(db.catalog().FindTable("a"), nullptr);
  EXPECT_EQ(db.catalog().FindTable("b"), nullptr);  // never reached
}

TEST(DatabaseMiscTest, RuleConditionErrorAbortsTriggeringTransaction) {
  // A rule whose condition query is broken (references a dropped table)
  // must fail the commit and roll the update back — conditions run inside
  // the triggering transaction (§2).
  Database::Options o;
  o.advance_clock_by_cost = false;
  Database db(o);
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (v int);
    create table helper (x int);
    insert into t values (1);
  )"));
  ASSERT_OK(db.RegisterFunction("noop", [](FunctionContext&) {
    return Status::OK();
  }));
  ASSERT_OK(db.Execute(R"(
    create rule r on t when updated
    if select x from helper
    then execute noop
  )").status());
  ASSERT_OK(db.Execute("drop table helper").status());
  auto r = db.Execute("update t set v = 2");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  auto rs = db.Execute("select v from t");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(1));  // rolled back
}

TEST(DatabaseMiscTest, RuleOnDroppedTableIsSkipped) {
  Database::Options o;
  o.advance_clock_by_cost = false;
  Database db(o);
  ASSERT_OK(db.ExecuteScript(
      "create table t (v int); create table other (v int)"));
  ASSERT_OK(db.RegisterFunction("noop", [](FunctionContext&) {
    return Status::OK();
  }));
  ASSERT_OK(db.Execute(
      "create rule r on t when inserted then execute noop").status());
  ASSERT_OK(db.Execute("drop table t").status());
  // Commits against other tables still work; the orphaned rule is inert.
  ASSERT_OK(db.Execute("insert into other values (1)").status());
  db.simulated()->RunUntilQuiescent();
  EXPECT_EQ(db.rules().stats().tasks_created, 0u);
}

TEST(DatabaseMiscTest, FailingActionCountsAsFailedTask) {
  Database::Options o;
  o.advance_clock_by_cost = false;
  Database db(o);
  ASSERT_OK(db.ExecuteScript("create table t (v int)"));
  ASSERT_OK(db.RegisterFunction("boom", [](FunctionContext&) {
    return Status::Internal("action failed");
  }));
  ASSERT_OK(db.Execute(
      "create rule r on t when inserted then execute boom").status());
  ASSERT_OK(db.Execute("insert into t values (1)").status());
  db.simulated()->RunUntilQuiescent();
  EXPECT_EQ(db.executor().stats().tasks_failed, 1u);
}

TEST(DatabaseMiscTest, UnknownActionFunctionFailsAtRunTimeNotCommit) {
  // Rules are validated structurally at creation; functions are black
  // boxes linked in separately, so a missing one surfaces when the task
  // runs (§2).
  Database::Options o;
  o.advance_clock_by_cost = false;
  Database db(o);
  ASSERT_OK(db.ExecuteScript("create table t (v int)"));
  ASSERT_OK(db.Execute(
      "create rule r on t when inserted then execute ghost").status());
  ASSERT_OK(db.Execute("insert into t values (1)").status());
  db.simulated()->RunUntilQuiescent();
  EXPECT_EQ(db.executor().stats().tasks_failed, 1u);
}

TEST(DatabaseMiscTest, DuplicateRegistrationsRejected) {
  Database db;
  ASSERT_OK(db.RegisterFunction("f", [](FunctionContext&) {
    return Status::OK();
  }));
  EXPECT_EQ(db.RegisterFunction("F", [](FunctionContext&) {
              return Status::OK();
            }).code(),
            StatusCode::kAlreadyExists);
  ASSERT_OK(db.RegisterScalarFunction(
      "g", [](const std::vector<Value>&) -> Result<Value> {
        return Value::Int(1);
      }));
  EXPECT_EQ(db.RegisterScalarFunction(
                  "g", [](const std::vector<Value>&) -> Result<Value> {
                    return Value::Int(2);
                  })
                .code(),
            StatusCode::kAlreadyExists);
  // Registered scalar functions are reachable from SQL immediately.
  ASSERT_OK(db.ExecuteScript("create table t (v int); "
                             "insert into t values (5)"));
  auto rs = db.Execute("select g() + v as x from t");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(6));
}

TEST(DatabaseMiscTest, ValueDensityPolicyOrdersApplicationTasks) {
  Database::Options o;
  o.policy = SchedulingPolicy::kValueDensityFirst;
  o.advance_clock_by_cost = false;
  Database db(o);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    TaskPtr t = db.NewTask();
    t->release_time = 100;  // all release together
    t->value = static_cast<double>(i);
    t->work = [&order, i](TaskControlBlock&) {
      order.push_back(i);
      return Status::OK();
    };
    db.Submit(t);
  }
  db.simulated()->RunUntilQuiescent();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2);  // highest value first
  EXPECT_EQ(order[2], 0);
}

TEST(DatabaseMiscTest, ResultSetToStringFormatsHeaderAndRows) {
  Database db;
  ASSERT_OK(db.ExecuteScript("create table t (a int, b string); "
                             "insert into t values (1, 'x')"));
  auto rs = db.Execute("select a, b from t");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->ToString(), "a\tb\n1\tx\n");
}

TEST(DatabaseMiscTest, NowAdvancesWithVirtualClock) {
  Database::Options o;
  o.advance_clock_by_cost = false;
  Database db(o);
  EXPECT_EQ(db.Now(), 0);
  db.simulated()->RunUntil(SecondsToMicros(3));
  EXPECT_EQ(db.Now(), SecondsToMicros(3));
}

}  // namespace
}  // namespace strip
