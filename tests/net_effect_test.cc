// Net-effect computation tests (§2: applications can collapse the audit
// trail themselves; this utility does it for them).

#include <gtest/gtest.h>

#include "strip/rules/net_effect.h"
#include "strip/rules/transition_tables.h"
#include "strip/storage/table.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  s.AddColumn("v", ValueType::kInt);
  return s;
}

/// Fixture driving a table + log and computing the net effect.
class NetEffectTest : public ::testing::Test {
 protected:
  NetEffectTest() : table_("t", KV()) {}

  RowHandle Insert(const std::string& k, int v) {
    auto r = table_.Insert(MakeRecord({Value::Str(k), Value::Int(v)}));
    EXPECT_TRUE(r.ok());
    log_.Append(LogOp::kInsert, &table_, (*r)->id, nullptr, (*r)->rec);
    return *r;
  }

  void Update(RowHandle row, int v) {
    RecordRef old_rec = row->rec;
    Status st = table_.Update(
        row, MakeRecord({old_rec->values[0], Value::Int(v)}));
    EXPECT_TRUE(st.ok());
    log_.Append(LogOp::kUpdate, &table_, row->id, old_rec, row->rec);
  }

  void Delete(RowHandle row) {
    log_.Append(LogOp::kDelete, &table_, row->id, row->rec, nullptr);
    table_.Erase(row);
  }

  NetEffect Compute() {
    BoundTableSet tt = BuildTransitionTables(table_, log_);
    auto net = ComputeNetEffect(tt);
    EXPECT_TRUE(net.ok()) << net.status().ToString();
    return net.ok() ? net.take() : NetEffect{};
  }

  /// A pre-existing row (not logged in this "transaction").
  RowHandle Preexisting(const std::string& k, int v) {
    auto r = table_.Insert(MakeRecord({Value::Str(k), Value::Int(v)}));
    EXPECT_TRUE(r.ok());
    return *r;
  }

  Table table_;
  TxnLog log_;
};

TEST_F(NetEffectTest, PlainInsert) {
  Insert("a", 1);
  NetEffect net = Compute();
  ASSERT_EQ(net.inserted.size(), 1u);
  EXPECT_EQ(net.inserted[0]->values[0], Value::Str("a"));
  EXPECT_TRUE(net.deleted.empty());
  EXPECT_TRUE(net.updated.empty());
}

TEST_F(NetEffectTest, InsertThenUpdateIsNetInsertOfFinalImage) {
  RowHandle r = Insert("a", 1);
  Update(r, 5);
  NetEffect net = Compute();
  ASSERT_EQ(net.inserted.size(), 1u);
  EXPECT_EQ(net.inserted[0]->values[1], Value::Int(5));
  EXPECT_TRUE(net.updated.empty());
}

TEST_F(NetEffectTest, InsertThenDeleteCollapsesToNothing) {
  RowHandle r = Insert("a", 1);
  Delete(r);
  NetEffect net = Compute();
  EXPECT_TRUE(net.inserted.empty());
  EXPECT_TRUE(net.deleted.empty());
  EXPECT_TRUE(net.updated.empty());
}

TEST_F(NetEffectTest, UpdateChainCollapsesToFirstOldLastNew) {
  RowHandle r = Preexisting("a", 1);
  Update(r, 2);
  Update(r, 3);
  Update(r, 4);
  NetEffect net = Compute();
  ASSERT_EQ(net.updated.size(), 1u);
  EXPECT_EQ(net.updated[0].first->values[1], Value::Int(1));
  EXPECT_EQ(net.updated[0].second->values[1], Value::Int(4));
}

TEST_F(NetEffectTest, RevertingUpdateChainIsNoOp) {
  RowHandle r = Preexisting("a", 1);
  Update(r, 9);
  Update(r, 1);  // back to the original value
  NetEffect net = Compute();
  EXPECT_TRUE(net.updated.empty());
  EXPECT_TRUE(net.inserted.empty());
  EXPECT_TRUE(net.deleted.empty());
}

TEST_F(NetEffectTest, UpdateThenDeleteIsNetDeleteOfOriginal) {
  RowHandle r = Preexisting("a", 1);
  Update(r, 7);
  Delete(r);
  NetEffect net = Compute();
  ASSERT_EQ(net.deleted.size(), 1u);
  EXPECT_EQ(net.deleted[0]->values[1], Value::Int(1));  // pre-txn image
}

TEST_F(NetEffectTest, PlainDelete) {
  RowHandle r = Preexisting("a", 3);
  Delete(r);
  NetEffect net = Compute();
  ASSERT_EQ(net.deleted.size(), 1u);
  EXPECT_EQ(net.deleted[0]->values[1], Value::Int(3));
}

TEST_F(NetEffectTest, MixedRowsKeepTransactionOrder) {
  RowHandle a = Preexisting("a", 1);
  RowHandle b = Preexisting("b", 2);
  Update(b, 20);       // finalized at seq 1 (until later events)
  RowHandle c = Insert("c", 3);
  Update(a, 10);
  Update(c, 30);
  NetEffect net = Compute();
  ASSERT_EQ(net.updated.size(), 2u);
  // Output follows the finalizing-event order: b's update (seq 1) before
  // a's (seq 3).
  EXPECT_EQ(net.updated[0].second->values[0], Value::Str("b"));
  EXPECT_EQ(net.updated[1].second->values[0], Value::Str("a"));
  ASSERT_EQ(net.inserted.size(), 1u);
  EXPECT_EQ(net.inserted[0]->values[1], Value::Int(30));
}

TEST_F(NetEffectTest, MissingTransitionTablesRejected) {
  BoundTableSet empty;
  EXPECT_EQ(ComputeNetEffect(empty).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// FoldGroupDeltas
// ---------------------------------------------------------------------------

TEST(FoldGroupDeltasTest, NetsSumsAndCountsPerKey) {
  std::vector<GroupDelta> rows;
  rows.push_back({Value::Str("a"), {10.0, 1.0}, 1});   // insert into a
  rows.push_back({Value::Str("b"), {5.0}, 1});         // insert into b
  rows.push_back({Value::Str("a"), {-4.0, 0.5}, -1});  // delete from a
  rows.push_back({Value::Str("a"), {1.0, 1.0}, 0});    // update within a
  std::vector<GroupDelta> out = FoldGroupDeltas(std::move(rows));
  ASSERT_EQ(out.size(), 2u);
  // First-seen key order is preserved.
  EXPECT_EQ(out[0].key, Value::Str("a"));
  ASSERT_EQ(out[0].sums.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].sums[0], 7.0);
  EXPECT_DOUBLE_EQ(out[0].sums[1], 2.5);
  EXPECT_EQ(out[0].count, 0);
  EXPECT_EQ(out[1].key, Value::Str("b"));
  EXPECT_DOUBLE_EQ(out[1].sums[0], 5.0);
  EXPECT_EQ(out[1].count, 1);
}

TEST(FoldGroupDeltasTest, InsertThenDeleteCancelsToZeroDelta) {
  // The window's net effect on the group is nothing; the fold reports the
  // zero row rather than dropping it (callers skip all-zero deltas).
  std::vector<GroupDelta> rows;
  rows.push_back({Value::Int(7), {3.0}, 1});
  rows.push_back({Value::Int(7), {-3.0}, -1});
  std::vector<GroupDelta> out = FoldGroupDeltas(std::move(rows));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].sums[0], 0.0);
  EXPECT_EQ(out[0].count, 0);
}

TEST(FoldGroupDeltasTest, IntAndDoubleKeysFoldAlike) {
  // Value equality treats 2 and 2.0 as the same key, so deltas arriving
  // with mixed numeric types still collapse (no string round trip).
  std::vector<GroupDelta> rows;
  rows.push_back({Value::Int(2), {1.0}, 1});
  rows.push_back({Value::Double(2.0), {2.0}, 1});
  std::vector<GroupDelta> out = FoldGroupDeltas(std::move(rows));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].sums[0], 3.0);
  EXPECT_EQ(out[0].count, 2);
}

TEST(FoldGroupDeltasTest, EmptyInput) {
  EXPECT_TRUE(FoldGroupDeltas({}).empty());
}

TEST(FoldGroupDeltasTest, KeepsMinimumChangeTimeAcrossFoldedRows) {
  // Netting must not make a commit look fresher than the oldest update it
  // applied: the folded delta carries the MINIMUM change time, and rows
  // with an unknown time (-1) neither win nor erase a known one.
  std::vector<GroupDelta> rows;
  rows.push_back({Value::Str("a"), {1.0}, 1, /*change_time=*/500});
  rows.push_back({Value::Str("a"), {2.0}, 1, /*change_time=*/-1});
  rows.push_back({Value::Str("a"), {3.0}, 1, /*change_time=*/200});
  rows.push_back({Value::Str("a"), {4.0}, 1, /*change_time=*/900});
  rows.push_back({Value::Str("b"), {5.0}, 1, /*change_time=*/-1});
  rows.push_back({Value::Str("b"), {6.0}, 1, /*change_time=*/40});
  std::vector<GroupDelta> out = FoldGroupDeltas(std::move(rows));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].change_time, 200);
  // An unknown first-seen time is replaced by the first known one.
  EXPECT_EQ(out[1].change_time, 40);
}

TEST(FoldGroupDeltasTest, AllUnknownChangeTimesStayUnknown) {
  std::vector<GroupDelta> rows;
  rows.push_back({Value::Str("a"), {1.0}, 1});
  rows.push_back({Value::Str("a"), {2.0}, 1});
  std::vector<GroupDelta> out = FoldGroupDeltas(std::move(rows));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].change_time, -1);
}

}  // namespace
}  // namespace strip
