// SQL executor tests beyond the basics: join strategies and their
// equivalence (property-swept over index configurations), multi-way joins,
// bound-table resolution order, pointer-backed output layouts, prepared
// parameters, and DML through indexes.

#include <gtest/gtest.h>

#include "strip/engine/database.h"
#include "tests/test_util.h"

namespace strip {
namespace {

class SqlExecutorTest : public ::testing::Test {
 protected:
  ResultSet MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.take() : ResultSet{};
  }

  Database db_;
};

TEST_F(SqlExecutorTest, ThreeWayJoin) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table a (k string, x int);
    create table b (k string, j string);
    create table c (j string, y int);
    insert into a values ('k1', 1), ('k2', 2);
    insert into b values ('k1', 'j1'), ('k2', 'j2'), ('k1', 'j2');
    insert into c values ('j1', 10), ('j2', 20);
  )"));
  ResultSet rs = MustQuery(
      "select a.k, x, y from a, b, c "
      "where a.k = b.k and b.j = c.j order by x, y");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][1], Value::Int(1));
  EXPECT_EQ(rs.rows[0][2], Value::Int(10));
  EXPECT_EQ(rs.rows[1][2], Value::Int(20));  // k1-j2 path
  EXPECT_EQ(rs.rows[2][1], Value::Int(2));
}

TEST_F(SqlExecutorTest, CrossJoinWhenNoPredicate) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table l (x int); create table r (y int);
    insert into l values (1), (2);
    insert into r values (10), (20), (30);
  )"));
  ResultSet rs = MustQuery("select x, y from l, r");
  EXPECT_EQ(rs.num_rows(), 6u);
}

TEST_F(SqlExecutorTest, NonEquiJoinPredicate) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table l (x int); create table r (y int);
    insert into l values (1), (2), (3);
    insert into r values (2), (3);
  )"));
  ResultSet rs = MustQuery("select x, y from l, r where x < y order by x, y");
  // (1,2) (1,3) (2,3)
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[2][0], Value::Int(2));
}

TEST_F(SqlExecutorTest, SelfJoinViaAliases) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (id int, parent int);
    insert into t values (1, 0), (2, 1), (3, 1);
  )"));
  ResultSet rs = MustQuery(
      "select c.id, p.id from t c, t p where c.parent = p.id order by c.id");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
  EXPECT_EQ(rs.rows[0][1], Value::Int(1));
}

TEST_F(SqlExecutorTest, ExpressionJoinKeys) {
  // Equi-join where one side is an expression, not a bare column.
  ASSERT_OK(db_.ExecuteScript(R"(
    create table l (x int); create table r (y int);
    insert into l values (1), (2), (3);
    insert into r values (2), (4);
  )"));
  ResultSet rs = MustQuery("select x, y from l, r where x * 2 = y order by x");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  EXPECT_EQ(rs.rows[1][0], Value::Int(2));
}

/// Property sweep: the same join must produce identical results whatever
/// indexes exist (index-nested-loop vs hash join vs scans).
class JoinEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquivalenceTest, IndexConfigurationDoesNotChangeResults) {
  int config = GetParam();
  Database db;
  ASSERT_OK(db.ExecuteScript(R"(
    create table f (k string, v int);
    create table d (k string, w int);
  )"));
  // Deterministic pseudo-random content with duplicates and dangling keys.
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(db.Execute("insert into f values ('k" +
                         std::to_string(i % 7) + "', " + std::to_string(i) +
                         ")")
                  .status());
  }
  for (int i = 0; i < 25; ++i) {
    ASSERT_OK(db.Execute("insert into d values ('k" +
                         std::to_string(i % 9) + "', " +
                         std::to_string(100 + i) + ")")
                  .status());
  }
  if (config & 1) ASSERT_OK(db.Execute("create index on f (k)").status());
  if (config & 2) ASSERT_OK(db.Execute("create index on d (k)").status());
  if (config & 4) {
    ASSERT_OK(
        db.Execute("create index on f (v) using tree").status());
  }
  auto rs = db.Execute(
      "select f.k, v, w from f, d where f.k = d.k and v > 10 "
      "order by v, w");
  ASSERT_OK(rs.status());
  // Golden counts computed by hand: f rows with v>10 are 29 (v=11..39);
  // keys k0..k6 cycle; d has keys k0..k8 with 25 rows: k0..k6 have 3 rows
  // each except k7,k8 (2). Every f key matches 3 d rows.
  EXPECT_EQ(rs->num_rows(), 29u * 3u);
  // Cross-check against an unindexed reference database.
  static std::string reference;
  std::string flat = rs->ToString();
  if (config == 0) {
    reference = flat;
  } else if (!reference.empty()) {
    EXPECT_EQ(flat, reference) << "config " << config;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, JoinEquivalenceTest,
                         ::testing::Range(0, 8));

TEST_F(SqlExecutorTest, UpdateThroughIndexMatchesScan) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table a (k string, v int);
    create table b (k string, v int);
    create index on a (k);
  )"));
  for (int i = 0; i < 20; ++i) {
    std::string row = "('k" + std::to_string(i % 5) + "', " +
                      std::to_string(i) + ")";
    ASSERT_OK(db_.Execute("insert into a values " + row).status());
    ASSERT_OK(db_.Execute("insert into b values " + row).status());
  }
  ResultSet ra = MustQuery("update a set v += 100 where k = 'k3' and v < 10");
  ResultSet rb = MustQuery("update b set v += 100 where k = 'k3' and v < 10");
  EXPECT_EQ(ra.rows[0][0], rb.rows[0][0]);  // same rows affected
  EXPECT_EQ(MustQuery("select v from a order by v").ToString(),
            MustQuery("select v from b order by v").ToString());
}

TEST_F(SqlExecutorTest, DeleteThroughIndex) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (k string, v int);
    create index on t (k);
    insert into t values ('a', 1), ('b', 2), ('a', 3);
  )"));
  ResultSet rs = MustQuery("delete from t where k = 'a'");
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
  EXPECT_EQ(MustQuery("select count(*) as n from t").rows[0][0],
            Value::Int(1));
  // Index reflects the deletes.
  EXPECT_EQ(MustQuery("select count(*) as n from t where k = 'a'").rows[0][0],
            Value::Int(0));
}

TEST_F(SqlExecutorTest, PreparedStatementWithParameters) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (k string, v double);
    create index on t (k);
    insert into t values ('a', 1.0), ('b', 2.0);
  )"));
  ASSERT_OK_AND_ASSIGN(
      Statement stmt,
      Parser::ParseStatement("update t set v += ? where k = ?"));
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db_.Begin());
  ASSERT_OK_AND_ASSIGN(
      int n, db_.ExecuteDml(txn, stmt, {Value::Double(5), Value::Str("a")}));
  EXPECT_EQ(n, 1);
  ASSERT_OK_AND_ASSIGN(
      n, db_.ExecuteDml(txn, stmt, {Value::Double(7), Value::Str("b")}));
  EXPECT_EQ(n, 1);
  ASSERT_OK(db_.Commit(txn));
  EXPECT_DOUBLE_EQ(
      MustQuery("select v from t where k = 'a'").rows[0][0].as_double(), 6.0);
  EXPECT_DOUBLE_EQ(
      MustQuery("select v from t where k = 'b'").rows[0][0].as_double(), 9.0);
}

TEST_F(SqlExecutorTest, SelectWithParameterInWhere) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (k string, v int);
    insert into t values ('a', 1), ('b', 2);
  )"));
  ASSERT_OK_AND_ASSIGN(Statement stmt,
                       Parser::ParseStatement("select v from t where k = ?"));
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db_.Begin());
  std::vector<Value> params = {Value::Str("b")};
  ASSERT_OK_AND_ASSIGN(
      TempTable result,
      db_.Query(txn, std::get<SelectStmt>(stmt), nullptr, &params));
  ASSERT_OK(db_.Commit(txn));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.Get(0, 0), Value::Int(2));
}

TEST_F(SqlExecutorTest, OrderByOutputAliasOfExpression) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (a int, b int);
    insert into t values (1, 9), (2, 1), (3, 5);
  )"));
  ResultSet rs = MustQuery("select a, a + b as s from t order by s");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));  // s=3
  EXPECT_EQ(rs.rows[1][0], Value::Int(3));  // s=8
  EXPECT_EQ(rs.rows[2][0], Value::Int(1));  // s=10
}

TEST_F(SqlExecutorTest, GroupByExpression) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g int, v int);
    insert into t values (1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (6, 6);
  )"));
  // Group by parity (an expression, not a bare column).
  ResultSet rs = MustQuery(
      "select g - 2 * floor(g / 2) as parity, sum(v) as s from t "
      "group by g - 2 * floor(g / 2) order by parity");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_double(), 12.0);  // evens 2+4+6
  EXPECT_DOUBLE_EQ(rs.rows[1][1].as_double(), 9.0);   // odds 1+3+5
}

TEST_F(SqlExecutorTest, AggregateInsideExpression) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 2.0), ('a', 4.0), ('b', 10.0);
  )"));
  ResultSet rs = MustQuery(
      "select g, sum(v) / count(*) as mean, 2 * sum(v) as twice from t "
      "group by g order by g");
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_double(), 3.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].as_double(), 12.0);
  EXPECT_DOUBLE_EQ(rs.rows[1][1].as_double(), 10.0);
}

TEST_F(SqlExecutorTest, DuplicateRowsPreserved) {
  // No implicit DISTINCT anywhere.
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (v int);
    insert into t values (1), (1), (1);
  )"));
  EXPECT_EQ(MustQuery("select v from t").num_rows(), 3u);
}

}  // namespace
}  // namespace strip
