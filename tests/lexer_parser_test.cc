// Unit tests for the SQL lexer and the recursive-descent parser,
// including the Figure 2 rule grammar.

#include <gtest/gtest.h>

#include "strip/sql/lexer.h"
#include "strip/sql/parser.h"
#include "tests/test_util.h"

namespace strip {
namespace {

TEST(LexerTest, BasicTokens) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Lex("select a, b from t where x >= 1.5"));
  ASSERT_EQ(tokens.size(), 11u);  // incl. EOF
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[2].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[8].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[9].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[9].double_value, 1.5);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

TEST(LexerTest, NumbersIncludingExponents) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Lex("42 3.5 1e3 2.5e-2 .75"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDoubleLiteral);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.025);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 0.75);
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Lex("'it''s'"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_EQ(Lex("'oops").status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, CommentsSkippedToEndOfLine) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Lex("a -- comment here\n b"));
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, CompoundOperators) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Lex("!= <> <= >= += -= ?"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[1].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[3].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[4].kind, TokenKind::kPlusEq);
  EXPECT_EQ(tokens[5].kind, TokenKind::kMinusEq);
  EXPECT_EQ(tokens[6].kind, TokenKind::kQuestion);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  EXPECT_EQ(Lex("select @").status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

std::string ParsedExpr(const std::string& text) {
  auto e = Parser::ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return e.ok() ? (*e)->ToString() : "<error>";
}

TEST(ParserTest, ExpressionPrecedence) {
  EXPECT_EQ(ParsedExpr("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(ParsedExpr("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(ParsedExpr("a = 1 and b = 2 or c = 3"),
            "(((a = 1) and (b = 2)) or (c = 3))");
  EXPECT_EQ(ParsedExpr("not a and b"), "(not a and b)");
  EXPECT_EQ(ParsedExpr("-x + 1"), "(-x + 1)");
  EXPECT_EQ(ParsedExpr("1 - 2 - 3"), "((1 - 2) - 3)");
}

TEST(ParserTest, QualifiedColumnsAndFunctions) {
  EXPECT_EQ(ParsedExpr("new.Price"), "new.price");
  EXPECT_EQ(ParsedExpr("f_bs(a, b.c, 1.0)"), "f_bs(a, b.c, 1)");
  EXPECT_EQ(ParsedExpr("sum(x * w)"), "sum((x * w))");
  EXPECT_EQ(ParsedExpr("count(*)"), "count(*)");
}

TEST(ParserTest, Parameters) {
  EXPECT_EQ(ParsedExpr("? + ?"), "(?1 + ?2)");
}

TEST(ParserTest, LiteralKeywords) {
  EXPECT_EQ(ParsedExpr("null"), "null");
  EXPECT_EQ(ParsedExpr("true"), "1");
  EXPECT_EQ(ParsedExpr("false"), "0");
}

TEST(ParserTest, StarOnlyInCount) {
  EXPECT_EQ(Parser::ParseExpression("sum(*)").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parser::ParseExpression("foo(*)").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

template <typename T>
T ParseAs(const std::string& sql) {
  auto stmt = Parser::ParseStatement(sql);
  EXPECT_TRUE(stmt.ok()) << sql << " -> " << stmt.status().ToString();
  if (!stmt.ok()) return T{};
  T* t = std::get_if<T>(&*stmt);
  EXPECT_NE(t, nullptr) << "wrong statement kind for: " << sql;
  if (t == nullptr) return T{};
  return std::move(*t);
}

TEST(ParserTest, CreateTable) {
  auto s = ParseAs<CreateTableStmt>(
      "create table T (a int, b double, c varchar(8))");
  EXPECT_EQ(s.name, "t");
  ASSERT_EQ(s.schema.num_columns(), 3);
  EXPECT_EQ(s.schema.column(0).type, ValueType::kInt);
  EXPECT_EQ(s.schema.column(1).type, ValueType::kDouble);
  EXPECT_EQ(s.schema.column(2).type, ValueType::kString);
}

TEST(ParserTest, CreateTableRejectsDuplicatesAndBadTypes) {
  EXPECT_FALSE(Parser::ParseStatement("create table t (a int, a int)").ok());
  EXPECT_FALSE(Parser::ParseStatement("create table t (a blob)").ok());
}

TEST(ParserTest, CreateIndexVariants) {
  auto s = ParseAs<CreateIndexStmt>("create index on t (k)");
  EXPECT_EQ(s.table, "t");
  EXPECT_EQ(s.column, "k");
  EXPECT_EQ(s.kind, IndexKind::kHash);
  s = ParseAs<CreateIndexStmt>("create index myidx on t (k) using tree");
  EXPECT_EQ(s.index_name, "myidx");
  EXPECT_EQ(s.kind, IndexKind::kRbTree);
}

TEST(ParserTest, SelectFull) {
  auto s = ParseAs<SelectStmt>(
      "select a, b + 1 as c from t1, t2 x where t1.k = x.k and a > 2 "
      "group by a order by c desc, a");
  EXPECT_FALSE(s.star);
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[1].alias, "c");
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[1].alias, "x");
  EXPECT_EQ(s.from[1].EffectiveName(), "x");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.group_by.size(), 1u);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_FALSE(s.order_by[1].descending);
}

TEST(ParserTest, SelectStar) {
  auto s = ParseAs<SelectStmt>("select * from t");
  EXPECT_TRUE(s.star);
  EXPECT_TRUE(s.items.empty());
}

TEST(ParserTest, SelectGroupbyPaperSpelling) {
  // The paper writes "groupby" as one word in compute_comps2 (Figure 6).
  auto s = ParseAs<SelectStmt>("select g, sum(v) from t groupby g");
  EXPECT_EQ(s.group_by.size(), 1u);
}

TEST(ParserTest, InsertMultiRowWithColumns) {
  auto s = ParseAs<InsertStmt>(
      "insert into t (b, a) values (1, 2), (3, 4)");
  EXPECT_EQ(s.table, "t");
  ASSERT_EQ(s.columns.size(), 2u);
  EXPECT_EQ(s.columns[0], "b");
  ASSERT_EQ(s.rows.size(), 2u);
  EXPECT_EQ(s.rows[1].size(), 2u);
}

TEST(ParserTest, UpdateWithCompoundAssignment) {
  auto s = ParseAs<UpdateStmt>(
      "update t set price += 2.0, volume = 0 where symbol = 'a'");
  ASSERT_EQ(s.sets.size(), 2u);
  // `price += e` desugars to `price = price + e`.
  EXPECT_EQ(s.sets[0].expr->ToString(), "(price + 2)");
  EXPECT_EQ(s.sets[1].expr->ToString(), "0");
  ASSERT_NE(s.where, nullptr);
}

TEST(ParserTest, DeleteWithAndWithoutWhere) {
  auto s = ParseAs<DeleteStmt>("delete from t where a = 1");
  EXPECT_NE(s.where, nullptr);
  s = ParseAs<DeleteStmt>("delete from t");
  EXPECT_EQ(s.where, nullptr);
}

TEST(ParserTest, CreateViews) {
  auto s = ParseAs<CreateViewStmt>("create view v as select a from t");
  EXPECT_FALSE(s.materialized);
  s = ParseAs<CreateViewStmt>(
      "create materialized view v as select a from t");
  EXPECT_TRUE(s.materialized);
  EXPECT_EQ(s.name, "v");
}

TEST(ParserTest, DropStatements) {
  auto d = ParseAs<DropTableStmt>("drop table t");
  EXPECT_EQ(d.name, "t");
  auto r = ParseAs<DropRuleStmt>("drop rule foo");
  EXPECT_EQ(r.name, "foo");
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto stmts = Parser::ParseScript(
      "create table t (a int); insert into t values (1);; select a from t;");
  ASSERT_OK(stmts.status());
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(ParserTest, TrailingGarbageIsError) {
  EXPECT_FALSE(Parser::ParseStatement("select a from t garbage +").ok());
}

// ---------------------------------------------------------------------------
// CREATE RULE (Figure 2)
// ---------------------------------------------------------------------------

TEST(RuleParserTest, FullFigure2Rule) {
  auto s = ParseAs<CreateRuleStmt>(R"(
    create rule do_comps3 on stocks
    when updated price
    if
      select comp, comps_list.symbol as symbol, weight,
             old.price as old_price, new.price as new_price
      from comps_list, new, old
      where comps_list.symbol = new.symbol
        and new.execute_order = old.execute_order
      bind as matches
    then
      execute compute_comps3
      unique on comp
      after 1.0 seconds
  )");
  EXPECT_EQ(s.rule_name, "do_comps3");
  EXPECT_EQ(s.table, "stocks");
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].kind, RuleEventKind::kUpdated);
  ASSERT_EQ(s.events[0].columns.size(), 1u);
  EXPECT_EQ(s.events[0].columns[0], "price");
  ASSERT_EQ(s.condition.size(), 1u);
  EXPECT_EQ(s.condition[0].bind_as, "matches");
  EXPECT_EQ(s.condition[0].query.from.size(), 3u);
  EXPECT_EQ(s.function_name, "compute_comps3");
  EXPECT_TRUE(s.unique);
  ASSERT_EQ(s.unique_columns.size(), 1u);
  EXPECT_EQ(s.unique_columns[0], "comp");
  EXPECT_DOUBLE_EQ(s.delay_seconds, 1.0);
}

TEST(RuleParserTest, MinimalRule) {
  auto s = ParseAs<CreateRuleStmt>(
      "create rule foo on t1 when inserted then execute my_function");
  EXPECT_EQ(s.events[0].kind, RuleEventKind::kInserted);
  EXPECT_TRUE(s.condition.empty());
  EXPECT_TRUE(s.evaluate.empty());
  EXPECT_FALSE(s.unique);
  EXPECT_DOUBLE_EQ(s.delay_seconds, 0.0);
}

TEST(RuleParserTest, MultipleEvents) {
  auto s = ParseAs<CreateRuleStmt>(
      "create rule r on t when inserted deleted updated a, b "
      "then execute f");
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.events[0].kind, RuleEventKind::kInserted);
  EXPECT_EQ(s.events[1].kind, RuleEventKind::kDeleted);
  EXPECT_EQ(s.events[2].kind, RuleEventKind::kUpdated);
  EXPECT_EQ(s.events[2].columns.size(), 2u);
}

TEST(RuleParserTest, EvaluateClauseAndQueryCommalist) {
  auto s = ParseAs<CreateRuleStmt>(R"(
    create rule r on t
    when inserted
    if select * from inserted bind as ins,
       select a from t where a > 0
    then
      evaluate select a, b from t bind as extra
      execute f
      unique
      after 2 seconds
  )");
  ASSERT_EQ(s.condition.size(), 2u);
  EXPECT_EQ(s.condition[0].bind_as, "ins");
  EXPECT_TRUE(s.condition[1].bind_as.empty());
  ASSERT_EQ(s.evaluate.size(), 1u);
  EXPECT_EQ(s.evaluate[0].bind_as, "extra");
  EXPECT_TRUE(s.unique);
  EXPECT_TRUE(s.unique_columns.empty());
  EXPECT_DOUBLE_EQ(s.delay_seconds, 2.0);
}

TEST(RuleParserTest, QualifiedUniqueColumnKeepsColumnPart) {
  // The paper writes `unique on X.A`; only the column name matters since
  // bound-table column names are unique (Appendix A).
  auto s = ParseAs<CreateRuleStmt>(
      "create rule r on x when updated then execute f unique on x.a "
      "after 0.5 seconds");
  ASSERT_EQ(s.unique_columns.size(), 1u);
  EXPECT_EQ(s.unique_columns[0], "a");
}

TEST(RuleParserTest, OptionalEndRuleTerminator) {
  EXPECT_OK(Parser::ParseStatement(
                "create rule r on t when inserted then execute f end rule")
                .status());
}

TEST(RuleParserTest, Errors) {
  // Missing event.
  EXPECT_FALSE(
      Parser::ParseStatement("create rule r on t when then execute f").ok());
  // Negative delay.
  EXPECT_FALSE(Parser::ParseStatement(
                   "create rule r on t when inserted then execute f "
                   "after -1.0 seconds")
                   .ok());
  // Missing SECONDS unit.
  EXPECT_FALSE(Parser::ParseStatement(
                   "create rule r on t when inserted then execute f after 1")
                   .ok());
  // Missing function.
  EXPECT_FALSE(
      Parser::ParseStatement("create rule r on t when inserted then").ok());
}

}  // namespace
}  // namespace strip
