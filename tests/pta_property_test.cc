// The repository's central correctness property (DESIGN.md §6), swept as a
// parameterized suite: for random bursty update streams, the final
// comp_prices maintained by ANY batching variant at ANY delay window
// equals a from-scratch recomputation from base data once the system
// quiesces — and likewise for option_prices under last-value-wins
// recomputation.

#include <gtest/gtest.h>

#include "strip/market/app_functions.h"
#include "strip/market/pta_runner.h"
#include "tests/test_util.h"

namespace strip {
namespace {

MarketTrace MakeTrace(uint64_t seed) {
  TraceOptions t;
  t.num_stocks = 80;
  t.duration_seconds = 20;
  t.target_updates = 400;
  t.seed = seed;
  return MarketTrace::Generate(t);
}

PtaConfig SmallPta() {
  PtaConfig c;
  c.num_composites = 8;
  c.stocks_per_composite = 15;
  c.num_options = 150;
  c.seed = 99;
  return c;
}

using CompParam = std::tuple<CompRuleVariant, double, uint64_t>;

class CompConsistencyTest : public ::testing::TestWithParam<CompParam> {};

TEST_P(CompConsistencyTest, MaintainedEqualsRecomputed) {
  auto [variant, delay, seed] = GetParam();
  MarketTrace trace = MakeTrace(seed);
  PtaExperiment exp(trace, SmallPta());
  ASSERT_OK(exp.Setup(CompRuleSql(variant, delay)));
  ASSERT_OK_AND_ASSIGN(PtaRunResult result, exp.Run());
  EXPECT_EQ(result.failed_tasks, 0u);
  EXPECT_GT(result.num_recomputes, 0u);
  ASSERT_OK(CheckDerivedDataConsistency(exp.db(), 0.05, 1e-6,
                                        /*check_comps=*/true,
                                        /*check_options=*/false));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompConsistencyTest,
    ::testing::Combine(
        ::testing::Values(CompRuleVariant::kNonUnique,
                          CompRuleVariant::kUnique,
                          CompRuleVariant::kUniqueOnSymbol,
                          CompRuleVariant::kUniqueOnComp),
        ::testing::Values(0.3, 1.5), ::testing::Values(21u, 22u)),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case CompRuleVariant::kNonUnique: name = "NonUnique"; break;
        case CompRuleVariant::kUnique: name = "Unique"; break;
        case CompRuleVariant::kUniqueOnSymbol: name = "OnSymbol"; break;
        case CompRuleVariant::kUniqueOnComp: name = "OnComp"; break;
      }
      name += std::get<1>(info.param) < 1 ? "_Short" : "_Long";
      name += "_Seed" + std::to_string(std::get<2>(info.param));
      return name;
    });

using OptionParam = std::tuple<OptionRuleVariant, double, uint64_t>;

class OptionConsistencyTest
    : public ::testing::TestWithParam<OptionParam> {};

TEST_P(OptionConsistencyTest, MaintainedEqualsRecomputed) {
  auto [variant, delay, seed] = GetParam();
  MarketTrace trace = MakeTrace(seed);
  PtaExperiment exp(trace, SmallPta());
  ASSERT_OK(exp.Setup(OptionRuleSql(variant, delay)));
  ASSERT_OK_AND_ASSIGN(PtaRunResult result, exp.Run());
  EXPECT_EQ(result.failed_tasks, 0u);
  ASSERT_OK(CheckDerivedDataConsistency(exp.db(), 0.05, 1e-6,
                                        /*check_comps=*/false,
                                        /*check_options=*/true));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptionConsistencyTest,
    ::testing::Combine(
        ::testing::Values(OptionRuleVariant::kNonUnique,
                          OptionRuleVariant::kUnique,
                          OptionRuleVariant::kUniqueOnSymbol,
                          OptionRuleVariant::kUniqueOnOptionSymbol),
        ::testing::Values(0.3, 1.5), ::testing::Values(31u)),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case OptionRuleVariant::kNonUnique: name = "NonUnique"; break;
        case OptionRuleVariant::kUnique: name = "Unique"; break;
        case OptionRuleVariant::kUniqueOnSymbol: name = "OnSymbol"; break;
        case OptionRuleVariant::kUniqueOnOptionSymbol:
          name = "OnOption";
          break;
      }
      name += std::get<1>(info.param) < 1 ? "_Short" : "_Long";
      name += "_Seed" + std::to_string(std::get<2>(info.param));
      return name;
    });

/// Both views maintained simultaneously by two rules — the full PTA — must
/// both be exact.
TEST(PtaBothViewsTest, CompAndOptionRulesCoexist) {
  MarketTrace trace = MakeTrace(77);
  PtaExperiment exp(trace, SmallPta());
  ASSERT_OK(exp.Setup(CompRuleSql(CompRuleVariant::kUniqueOnComp, 1.0)));
  ASSERT_OK(exp.db()
                .Execute(OptionRuleSql(OptionRuleVariant::kUniqueOnSymbol,
                                       1.0))
                .status());
  ASSERT_OK_AND_ASSIGN(PtaRunResult result, exp.Run());
  EXPECT_EQ(result.failed_tasks, 0u);
  ASSERT_OK(CheckDerivedDataConsistency(exp.db(), 0.05, 1e-6, true, true));
}

/// Scheduling policy must not affect final correctness.
TEST(PtaBothViewsTest, EdfPolicyAlsoConsistent) {
  MarketTrace trace = MakeTrace(78);
  PtaExperiment exp(trace, SmallPta());
  ASSERT_OK(exp.Setup(CompRuleSql(CompRuleVariant::kUnique, 0.5)));
  ASSERT_OK_AND_ASSIGN(PtaRunResult result, exp.Run());
  EXPECT_EQ(result.failed_tasks, 0u);
  ASSERT_OK(CheckDerivedDataConsistency(exp.db(), 0.05, 1e-6, true, false));
}

}  // namespace
}  // namespace strip
