// Transaction log + rollback tests: undo of inserts / deletes / updates
// (including mixed sequences and insert-then-delete of the same row),
// transaction state machine, database-level abort semantics.

#include <gtest/gtest.h>

#include "strip/engine/database.h"
#include "strip/txn/transaction.h"
#include "strip/txn/txn_log.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  s.AddColumn("v", ValueType::kInt);
  return s;
}

std::string Dump(const Table& t) {
  std::string out;
  for (const Row& r : t.rows()) {
    out += r.rec->values[0].ToString() + "=" +
           r.rec->values[1].ToString() + ";";
  }
  return out;
}

TEST(TxnLogTest, ExecuteOrderIsSequential) {
  Table t("t", KV());
  TxnLog log;
  auto r1 = t.Insert(MakeRecord({Value::Str("a"), Value::Int(1)}));
  log.Append(LogOp::kInsert, &t, (*r1)->id, nullptr, (*r1)->rec);
  auto r2 = t.Insert(MakeRecord({Value::Str("b"), Value::Int(2)}));
  log.Append(LogOp::kInsert, &t, (*r2)->id, nullptr, (*r2)->rec);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.entries()[0].execute_order, 1);
  EXPECT_EQ(log.entries()[1].execute_order, 2);
}

TEST(TxnLogTest, UndoInsert) {
  Table t("t", KV());
  TxnLog log;
  auto r = t.Insert(MakeRecord({Value::Str("a"), Value::Int(1)}));
  log.Append(LogOp::kInsert, &t, (*r)->id, nullptr, (*r)->rec);
  ASSERT_OK(log.Undo());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(log.empty());
}

TEST(TxnLogTest, UndoDeleteRestoresRow) {
  Table t("t", KV());
  auto r = t.Insert(MakeRecord({Value::Str("a"), Value::Int(1)}));
  uint64_t id = (*r)->id;
  TxnLog log;
  log.Append(LogOp::kDelete, &t, id, (*r)->rec, nullptr);
  t.Erase(*r);
  ASSERT_OK(log.Undo());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.FindRow(id));
  EXPECT_EQ(Dump(t), "a=1;");
}

TEST(TxnLogTest, UndoUpdateRestoresOldImage) {
  Table t("t", KV());
  auto r = t.Insert(MakeRecord({Value::Str("a"), Value::Int(1)}));
  TxnLog log;
  RecordRef old_rec = (*r)->rec;
  ASSERT_OK(t.Update(*r, MakeRecord({Value::Str("a"), Value::Int(99)})));
  log.Append(LogOp::kUpdate, &t, (*r)->id, old_rec, (*r)->rec);
  ASSERT_OK(log.Undo());
  EXPECT_EQ(Dump(t), "a=1;");
}

TEST(TxnLogTest, UndoMixedSequenceInReverse) {
  Table t("t", KV());
  auto a = t.Insert(MakeRecord({Value::Str("a"), Value::Int(1)}));
  std::string before = Dump(t);

  TxnLog log;
  // 1. update a -> 10
  RecordRef old_a = (*a)->rec;
  ASSERT_OK(t.Update(*a, MakeRecord({Value::Str("a"), Value::Int(10)})));
  log.Append(LogOp::kUpdate, &t, (*a)->id, old_a, (*a)->rec);
  // 2. insert b
  auto b = t.Insert(MakeRecord({Value::Str("b"), Value::Int(2)}));
  log.Append(LogOp::kInsert, &t, (*b)->id, nullptr, (*b)->rec);
  // 3. delete a
  log.Append(LogOp::kDelete, &t, (*a)->id, (*a)->rec, nullptr);
  t.Erase(*a);
  // 4. update b -> 20
  RecordRef old_b = (*b)->rec;
  ASSERT_OK(t.Update(*b, MakeRecord({Value::Str("b"), Value::Int(20)})));
  log.Append(LogOp::kUpdate, &t, (*b)->id, old_b, (*b)->rec);

  ASSERT_OK(log.Undo());
  EXPECT_EQ(Dump(t), before);
}

TEST(TxnLogTest, UndoInsertThenDeleteOfSameRow) {
  // The log is NOT net-effect reduced (§2): both entries exist and undo
  // in reverse order leaves the table unchanged.
  Table t("t", KV());
  TxnLog log;
  auto r = t.Insert(MakeRecord({Value::Str("x"), Value::Int(5)}));
  log.Append(LogOp::kInsert, &t, (*r)->id, nullptr, (*r)->rec);
  log.Append(LogOp::kDelete, &t, (*r)->id, (*r)->rec, nullptr);
  t.Erase(*r);
  ASSERT_OK(log.Undo());
  EXPECT_EQ(t.size(), 0u);
}

TEST(TransactionTest, StateMachine) {
  Transaction txn(1, 100);
  EXPECT_TRUE(txn.active());
  EXPECT_EQ(txn.state(), TxnState::kActive);
  EXPECT_EQ(txn.start_time(), 100);
  txn.MarkCommitted(200);
  EXPECT_EQ(txn.state(), TxnState::kCommitted);
  EXPECT_EQ(txn.commit_time(), 200);
  EXPECT_FALSE(txn.active());
  EXPECT_STREQ(TxnStateName(TxnState::kCommitted), "committed");
}

// --- database-level transaction semantics ---------------------------------

TEST(DatabaseTxnTest, AbortRollsBackAllStatements) {
  Database db;
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (k string, v int);
    insert into t values ('keep', 1);
  )"));
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db.Begin());
  ASSERT_OK(db.ExecuteInTxn(txn, "insert into t values ('tmp', 2)").status());
  ASSERT_OK(db.ExecuteInTxn(txn, "update t set v = 99 where k = 'keep'")
                .status());
  ASSERT_OK(db.ExecuteInTxn(txn, "delete from t where k = 'keep'").status());
  ASSERT_OK(db.Abort(txn));
  auto rs = db.Execute("select k, v from t order by k");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows[0][0], Value::Str("keep"));
  EXPECT_EQ(rs->rows[0][1], Value::Int(1));
}

TEST(DatabaseTxnTest, CommitTwiceFails) {
  Database db;
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db.Begin());
  ASSERT_OK(db.Commit(txn));
  // The transaction object is gone after commit; committing a stale or
  // null pointer fails cleanly.
  EXPECT_EQ(db.Commit(nullptr).code(), StatusCode::kFailedPrecondition);
}

TEST(DatabaseTxnTest, ReadYourOwnWrites) {
  Database db;
  ASSERT_OK(db.ExecuteScript("create table t (v int)"));
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db.Begin());
  ASSERT_OK(db.ExecuteInTxn(txn, "insert into t values (42)").status());
  ASSERT_OK_AND_ASSIGN(ResultSet rs,
                       db.ExecuteInTxn(txn, "select v from t"));
  ASSERT_EQ(rs.num_rows(), 1u);
  ASSERT_OK(db.Commit(txn));
}

TEST(DatabaseTxnTest, IsolationThroughTableLocks) {
  // Strict 2PL with wait-die: a younger transaction requesting a lock held
  // in a conflicting mode by an older transaction dies immediately.
  Database db;
  ASSERT_OK(db.ExecuteScript("create table t (v int); "
                             "insert into t values (1)"));
  ASSERT_OK_AND_ASSIGN(Transaction * older, db.Begin());
  ASSERT_OK_AND_ASSIGN(Transaction * younger, db.Begin());
  // Older takes X via an update.
  ASSERT_OK(db.ExecuteInTxn(older, "update t set v = 2").status());
  // Younger now conflicts and must die (not block, since we are single
  // threaded here).
  auto r = db.ExecuteInTxn(younger, "select v from t");
  EXPECT_EQ(r.status().code(), StatusCode::kAborted);
  ASSERT_OK(db.Abort(younger));
  ASSERT_OK(db.Commit(older));
}

TEST(DatabaseTxnTest, DdlInsideTransactionRejected) {
  Database db;
  ASSERT_OK_AND_ASSIGN(Transaction * txn, db.Begin());
  EXPECT_EQ(db.ExecuteInTxn(txn, "create table t (v int)").status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_OK(db.Abort(txn));
}

}  // namespace
}  // namespace strip
