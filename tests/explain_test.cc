// Plan-trace (EXPLAIN) tests: the executor reports the scan methods and
// join algorithms it actually used.

#include <gtest/gtest.h>

#include "strip/engine/database.h"
#include "tests/test_util.h"

namespace strip {
namespace {

bool Contains(const std::vector<std::string>& lines,
              const std::string& needle) {
  for (const auto& l : lines) {
    if (l.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string Flat(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) out += l + "\n";
  return out;
}

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      create table big (k string, v int);
      create table small (k string, w int);
      create index on big (k);
    )"));
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(db_.Execute("insert into big values ('k" +
                            std::to_string(i) + "', " + std::to_string(i) +
                            ")").status());
    }
    ASSERT_OK(db_.Execute(
        "insert into small values ('k5', 1), ('k7', 2)").status());
  }

  std::vector<std::string> Explain(const std::string& sql) {
    auto r = db_.Explain(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.take() : std::vector<std::string>{};
  }

  Database db_;
};

TEST_F(ExplainTest, IndexNestedLoopChosenForIndexedJoinColumn) {
  auto lines = Explain(
      "select big.v, small.w from big, small where big.k = small.k");
  EXPECT_TRUE(Contains(lines, "start with small")) << Flat(lines);
  EXPECT_TRUE(Contains(lines, "index-nested-loop join big (index on k)"))
      << Flat(lines);
  EXPECT_TRUE(Contains(lines, "-> 2 row(s)")) << Flat(lines);
}

TEST_F(ExplainTest, HashJoinWhenNoIndex) {
  ASSERT_OK(db_.ExecuteScript(
      "create table other (k string, x int); "
      "insert into other values ('k5', 9)"));
  auto lines = Explain(
      "select v, x from big b, other where b.k = other.k");
  // b is an alias, so the index on big.k is still usable; join against the
  // unindexed `other` instead to force a hash join.
  lines = Explain("select w, x from small, other where small.k = other.k");
  EXPECT_TRUE(Contains(lines, "hash join")) << Flat(lines);
}

TEST_F(ExplainTest, IndexProbeForConstantEquality) {
  auto lines = Explain("select v from big where k = 'k42'");
  EXPECT_TRUE(Contains(lines, "index probe k = k42")) << Flat(lines);
  EXPECT_TRUE(Contains(lines, "-> 1 row(s)")) << Flat(lines);
}

TEST_F(ExplainTest, CrossJoinReported) {
  auto lines = Explain("select big.v, small.w from big, small");
  EXPECT_TRUE(Contains(lines, "nested-loop join")) << Flat(lines);
  EXPECT_TRUE(Contains(lines, "-> 200 row(s)")) << Flat(lines);
}

TEST_F(ExplainTest, AggregationAndSortReported) {
  auto lines = Explain(
      "select k, count(*) as n from big group by k having count(*) > 0 "
      "order by n");
  EXPECT_TRUE(Contains(lines, "hash aggregate: 1 group key(s), having"))
      << Flat(lines);
  EXPECT_TRUE(Contains(lines, "sort 100 group row(s)")) << Flat(lines);
}

TEST_F(ExplainTest, NonSelectRejected) {
  EXPECT_EQ(db_.Explain("update big set v = 0").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace strip
