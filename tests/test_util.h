#ifndef STRIP_TESTS_TEST_UTIL_H_
#define STRIP_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "strip/common/status.h"

#define ASSERT_OK(expr)                              \
  do {                                               \
    auto _st = (expr);                               \
    ASSERT_TRUE(_st.ok()) << _st.ToString();         \
  } while (0)

#define EXPECT_OK(expr)                              \
  do {                                               \
    auto _st = (expr);                               \
    EXPECT_TRUE(_st.ok()) << _st.ToString();         \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)              \
  STRIP_ASSIGN_OR_RETURN_TEST_IMPL(                  \
      STRIP_CONCAT_(_test_res_, __LINE__), lhs, expr)

#define STRIP_ASSIGN_OR_RETURN_TEST_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();      \
  lhs = tmp.take()

#endif  // STRIP_TESTS_TEST_UTIL_H_
