// Unit tests for expression evaluation: arithmetic, null propagation,
// comparisons, logic, scalar functions, parameters.

#include <gtest/gtest.h>

#include <map>

#include "strip/sql/expr_eval.h"
#include "strip/sql/parser.h"
#include "tests/test_util.h"

namespace strip {
namespace {

/// RowContext over a fixed name -> value map.
class MapRowContext final : public RowContext {
 public:
  explicit MapRowContext(std::map<std::string, Value> values)
      : values_(std::move(values)) {}

  Result<Value> GetColumn(const std::string& qualifier,
                          const std::string& column) const override {
    std::string key = qualifier.empty() ? column : qualifier + "." + column;
    auto it = values_.find(key);
    if (it == values_.end()) {
      return Status::NotFound("no column " + key);
    }
    return it->second;
  }

 private:
  std::map<std::string, Value> values_;
};

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest()
      : funcs_(ScalarFuncRegistry::WithBuiltins()),
        row_({{"x", Value::Int(4)},
              {"y", Value::Double(2.5)},
              {"s", Value::Str("hi")},
              {"n", Value::Null()},
              {"t.z", Value::Int(9)}}) {}

  Value Eval(const std::string& text,
             const std::vector<Value>* params = nullptr) {
    auto e = Parser::ParseExpression(text);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    auto v = EvalExpr(**e, &row_, &funcs_, params);
    EXPECT_TRUE(v.ok()) << text << " -> " << v.status().ToString();
    return v.ok() ? *v : Value::Null();
  }

  Status EvalError(const std::string& text) {
    auto e = Parser::ParseExpression(text);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return EvalExpr(**e, &row_, &funcs_).status();
  }

  ScalarFuncRegistry funcs_;
  MapRowContext row_;
};

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3"), Value::Int(7));
  EXPECT_EQ(Eval("x - 1"), Value::Int(3));
  EXPECT_DOUBLE_EQ(Eval("x * y").as_double(), 10.0);
  EXPECT_DOUBLE_EQ(Eval("x / 2").as_double(), 2.0);  // div is always double
  EXPECT_EQ(Eval("x / 2").type(), ValueType::kDouble);
  EXPECT_EQ(Eval("-x"), Value::Int(-4));
  EXPECT_DOUBLE_EQ(Eval("-(y)").as_double(), -2.5);
}

TEST_F(ExprEvalTest, StringConcatenationViaPlus) {
  EXPECT_EQ(Eval("s + s"), Value::Str("hihi"));
}

TEST_F(ExprEvalTest, DivisionByZeroIsError) {
  EXPECT_EQ(EvalError("1 / 0").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(EvalError("1 / 0.0").code(), StatusCode::kInvalidArgument);
}

TEST_F(ExprEvalTest, NullPropagation) {
  EXPECT_TRUE(Eval("n + 1").is_null());
  EXPECT_TRUE(Eval("n = 1").is_null());
  EXPECT_TRUE(Eval("-n").is_null());
  // Null is falsey under two-valued logic.
  EXPECT_EQ(Eval("n and 1"), Value::Int(0));
  EXPECT_EQ(Eval("n or 1"), Value::Int(1));
  EXPECT_EQ(Eval("not n"), Value::Int(1));
}

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_EQ(Eval("x = 4"), Value::Int(1));
  EXPECT_EQ(Eval("x != 4"), Value::Int(0));
  EXPECT_EQ(Eval("x < y"), Value::Int(0));
  EXPECT_EQ(Eval("y <= 2.5"), Value::Int(1));
  EXPECT_EQ(Eval("s = 'hi'"), Value::Int(1));
  EXPECT_EQ(Eval("s < 'hz'"), Value::Int(1));
  // Numeric-string comparison is an error, not silently false.
  EXPECT_EQ(EvalError("x = s").code(), StatusCode::kInvalidArgument);
}

TEST_F(ExprEvalTest, ShortCircuit) {
  // The right side would divide by zero; AND must not evaluate it.
  EXPECT_EQ(Eval("0 and (1 / 0)"), Value::Int(0));
  EXPECT_EQ(Eval("1 or (1 / 0)"), Value::Int(1));
}

TEST_F(ExprEvalTest, QualifiedColumns) {
  EXPECT_EQ(Eval("t.z + 1"), Value::Int(10));
  EXPECT_EQ(EvalError("t.nope").code(), StatusCode::kNotFound);
}

TEST_F(ExprEvalTest, BuiltinFunctions) {
  EXPECT_DOUBLE_EQ(Eval("sqrt(16)").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(Eval("exp(0)").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(Eval("ln(exp(1))").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(Eval("pow(2, 10)").as_double(), 1024.0);
  EXPECT_DOUBLE_EQ(Eval("floor(2.7)").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(Eval("ceil(2.2)").as_double(), 3.0);
  EXPECT_EQ(Eval("abs(-3)"), Value::Int(3));
  EXPECT_DOUBLE_EQ(Eval("abs(-3.5)").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(Eval("normcdf(0)").as_double(), 0.5);
  EXPECT_NEAR(Eval("normcdf(100)").as_double(), 1.0, 1e-12);
  EXPECT_EQ(Eval("least(3, 1, 2)"), Value::Int(1));
  EXPECT_EQ(Eval("greatest(3, 1, 2)"), Value::Int(3));
  EXPECT_TRUE(Eval("sqrt(n)").is_null());
}

TEST_F(ExprEvalTest, FunctionErrors) {
  EXPECT_EQ(EvalError("nosuchfn(1)").code(), StatusCode::kNotFound);
  EXPECT_EQ(EvalError("sqrt(1, 2)").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(EvalError("sqrt('x')").code(), StatusCode::kInvalidArgument);
}

TEST_F(ExprEvalTest, Parameters) {
  std::vector<Value> params = {Value::Int(10), Value::Str("a")};
  EXPECT_EQ(Eval("? + 1", &params), Value::Int(11));
  EXPECT_EQ(EvalError("?").code(), StatusCode::kInvalidArgument);  // unbound
}

TEST_F(ExprEvalTest, AggregateOutsideSelectIsError) {
  EXPECT_EQ(EvalError("sum(x)").code(), StatusCode::kInvalidArgument);
}

TEST(ScalarFuncRegistryTest, RegisterAndDuplicate) {
  ScalarFuncRegistry r;
  ASSERT_OK(r.Register("f", [](const std::vector<Value>&) -> Result<Value> {
    return Value::Int(1);
  }));
  EXPECT_NE(r.Find("F"), nullptr);
  EXPECT_EQ(r.Find("g"), nullptr);
  EXPECT_EQ(r.Register("F", [](const std::vector<Value>&) -> Result<Value> {
              return Value::Int(2);
            }).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace strip
