// Durability layer (durability/): the replayable feed WAL, the checkpoint
// snapshot, and the DurableLog recovery procedure that makes a restarted
// server equal to the one that crashed. The torn-tail sweep is the heart
// of it: a kill -9 can cut the log at ANY byte, and every cut must recover
// cleanly to exactly the acknowledged prefix.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "strip/common/logging.h"
#include "strip/durability/durable_log.h"
#include "strip/durability/snapshot.h"
#include "strip/durability/wal.h"
#include "strip/feed/wire.h"
#include "tests/test_util.h"

namespace strip {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "strip_durability_XXXXXX").string();
    const char* made = ::mkdtemp(tmpl.data());
    STRIP_CHECK_MSG(made != nullptr, "mkdtemp failed");
    dir_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name = "") const {
    return name.empty() ? dir_ : dir_ + "/" + name;
  }

 private:
  std::string dir_;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

FeedRecord Rec(const std::string& sym, double px) {
  FeedRecord r;
  r.values = {Value::Str(sym), Value::Double(px)};
  return r;
}

// Size of one WAL entry: fixed header (magic + lsn + len + crc) plus the
// length-prefixed table name plus the wire-v1 record.
size_t EntryBytes(const std::string& table, const FeedRecord& rec) {
  return 20 + 4 + table.size() + EncodeFeedRecord(rec).size();
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(WalTest, RoundTripReplaysEveryEntryInOrder) {
  TempDir dir;
  std::string path = dir.path("feed.wal");
  std::vector<FeedRecord> sent = {Rec("ibm", 50.0), Rec("hp", 20.5),
                                  Rec("ibm", 51.0)};
  {
    ASSERT_OK_AND_ASSIGN(auto wal,
                         WalWriter::Open(path, 1, WalSyncPolicy::kManual));
    for (size_t i = 0; i < sent.size(); ++i) {
      ASSERT_OK_AND_ASSIGN(uint64_t lsn, wal->Append("quotes", sent[i]));
      EXPECT_EQ(lsn, i + 1);
    }
    ASSERT_OK(wal->Sync());
    EXPECT_EQ(wal->next_lsn(), 4u);
  }

  std::vector<WalEntry> got;
  ASSERT_OK_AND_ASSIGN(WalReplayResult r,
                       WalReplay(path, 1, [&](const WalEntry& e) {
                         got.push_back(e);
                         return Status::OK();
                       }));
  EXPECT_EQ(r.entries_replayed, 3u);
  EXPECT_EQ(r.next_lsn, 4u);
  EXPECT_EQ(r.torn_bytes, 0u);
  ASSERT_EQ(got.size(), 3u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].lsn, i + 1);
    EXPECT_EQ(got[i].table, "quotes");
    ASSERT_EQ(got[i].record.values.size(), 2u);
    EXPECT_EQ(got[i].record.values[0], sent[i].values[0]);
    EXPECT_EQ(got[i].record.values[1], sent[i].values[1]);
  }
}

TEST(WalTest, ReplayFromLsnDeliversOnlyTheTail) {
  TempDir dir;
  std::string path = dir.path("feed.wal");
  {
    ASSERT_OK_AND_ASSIGN(auto wal,
                         WalWriter::Open(path, 1, WalSyncPolicy::kManual));
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK(wal->Append("quotes", Rec("s", i)).status());
    }
    ASSERT_OK(wal->Sync());
  }
  std::vector<uint64_t> lsns;
  ASSERT_OK_AND_ASSIGN(WalReplayResult r,
                       WalReplay(path, 4, [&](const WalEntry& e) {
                         lsns.push_back(e.lsn);
                         return Status::OK();
                       }));
  // Entries 1..3 are snapshot-covered: still verified, not delivered.
  EXPECT_EQ(lsns, (std::vector<uint64_t>{4, 5}));
  EXPECT_EQ(r.entries_replayed, 2u);
  EXPECT_EQ(r.next_lsn, 6u);
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(
      WalReplayResult r,
      WalReplay(dir.path("absent.wal"), 1,
                [](const WalEntry&) { return Status::OK(); }));
  EXPECT_EQ(r.entries_replayed, 0u);
  EXPECT_EQ(r.next_lsn, 1u);
  EXPECT_EQ(r.valid_bytes, 0u);
}

// Satellite sweep at the WAL layer: truncate a 3-entry log at EVERY byte
// offset. Each cut must replay exactly the whole entries before the cut
// and report the rest as a torn tail — never an error, never a crash.
TEST(WalTest, TornTailTruncationSweepRecoversThePrefix) {
  TempDir dir;
  std::string path = dir.path("feed.wal");
  std::vector<FeedRecord> sent = {Rec("ibm", 50.0), Rec("hp", 20.5),
                                  Rec("sun", 13.125)};
  std::vector<size_t> boundaries = {0};
  {
    ASSERT_OK_AND_ASSIGN(auto wal,
                         WalWriter::Open(path, 1, WalSyncPolicy::kManual));
    for (const FeedRecord& rec : sent) {
      ASSERT_OK(wal->Append("quotes", rec).status());
      boundaries.push_back(boundaries.back() + EntryBytes("quotes", rec));
    }
    ASSERT_OK(wal->Sync());
  }
  std::string full = ReadFile(path);
  ASSERT_EQ(full.size(), boundaries.back());

  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::string torn_path = dir.path("torn.wal");
    WriteFile(torn_path, full.substr(0, cut));
    uint64_t delivered = 0;
    auto r = WalReplay(torn_path, 1, [&](const WalEntry&) {
      ++delivered;
      return Status::OK();
    });
    ASSERT_TRUE(r.ok()) << "cut at " << cut << ": " << r.status().ToString();
    size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    EXPECT_EQ(delivered, whole) << "cut at " << cut;
    EXPECT_EQ(r->valid_bytes, boundaries[whole]) << "cut at " << cut;
    EXPECT_EQ(r->torn_bytes, cut - boundaries[whole]) << "cut at " << cut;
    EXPECT_EQ(r->next_lsn, whole + 1) << "cut at " << cut;
  }
}

// REVIEW fix (medium): the group-commit rollback. A batch whose append or
// sync failed midway is truncated back out of the log, and appends after
// the rollback replay as if the batch never happened.
TEST(WalTest, TruncateToRollsBackAndAppendsContinueCleanly) {
  TempDir dir;
  std::string path = dir.path("feed.wal");
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WalWriter::Open(path, 1, WalSyncPolicy::kManual));
  ASSERT_OK(wal->Append("quotes", Rec("ibm", 1.0)).status());
  ASSERT_OK(wal->Append("quotes", Rec("hp", 2.0)).status());
  uint64_t pre_bytes = wal->size_bytes();
  uint64_t pre_lsn = wal->next_lsn();

  // A "batch" of two more entries that the server then decides to abort.
  ASSERT_OK(wal->Append("quotes", Rec("sun", 3.0)).status());
  ASSERT_OK(wal->Append("quotes", Rec("dec", 4.0)).status());
  ASSERT_OK(wal->TruncateTo(pre_bytes, pre_lsn));
  EXPECT_EQ(wal->size_bytes(), pre_bytes);
  EXPECT_EQ(wal->next_lsn(), pre_lsn);
  EXPECT_FALSE(wal->poisoned());

  // The next append reuses the rolled-back LSN and the file stays a
  // clean, gap-free chain.
  ASSERT_OK_AND_ASSIGN(uint64_t lsn, wal->Append("quotes", Rec("mips", 5.0)));
  EXPECT_EQ(lsn, pre_lsn);
  ASSERT_OK(wal->Sync());

  std::vector<std::string> syms;
  ASSERT_OK_AND_ASSIGN(WalReplayResult r,
                       WalReplay(path, 1, [&](const WalEntry& e) {
                         syms.push_back(e.record.values[0].as_string());
                         return Status::OK();
                       }));
  EXPECT_EQ(r.entries_replayed, 3u);
  EXPECT_EQ(r.torn_bytes, 0u);
  EXPECT_EQ(syms, (std::vector<std::string>{"ibm", "hp", "mips"}));
}

TEST(WalTest, InteriorCorruptionIsFatalNotATear) {
  TempDir dir;
  std::string path = dir.path("feed.wal");
  FeedRecord rec = Rec("ibm", 50.0);
  {
    ASSERT_OK_AND_ASSIGN(auto wal,
                         WalWriter::Open(path, 1, WalSyncPolicy::kManual));
    for (int i = 0; i < 3; ++i) {
      ASSERT_OK(wal->Append("quotes", rec).status());
    }
    ASSERT_OK(wal->Sync());
  }
  std::string full = ReadFile(path);
  size_t entry = EntryBytes("quotes", rec);
  auto replay = [&](const std::string& bytes) {
    WriteFile(path, bytes);
    return WalReplay(path, 1, [](const WalEntry&) { return Status::OK(); })
        .status();
  };

  // A CRC-breaking flip inside entry 1's payload, with entries 2 and 3
  // intact after it: acknowledged records follow the damage, so replay
  // must refuse rather than silently truncate them away.
  std::string flipped = full;
  flipped[20 + 5] = static_cast<char>(flipped[20 + 5] ^ 0x40);
  Status st = replay(flipped);
  EXPECT_FALSE(st.ok());

  // Entry 2's magic destroyed: detected as bad interior magic.
  std::string bad_magic = full;
  bad_magic[entry] = 'Z';
  EXPECT_FALSE(replay(bad_magic).ok());

  // Control: the same flip in the LAST entry is a legitimate tear.
  std::string torn_last = full;
  torn_last[2 * entry + 20 + 5] =
      static_cast<char>(torn_last[2 * entry + 20 + 5] ^ 0x40);
  EXPECT_OK(replay(torn_last));
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

Database::Options LogicalTime() {
  Database::Options o;
  o.mode = ExecutorMode::kSimulated;
  o.advance_clock_by_cost = false;
  return o;
}

constexpr const char* kSchema = R"(
  create table quotes (symbol string, price double);
  create index on quotes (symbol);
  create table counts (k string, n int);
  create index on counts (k);
)";

std::vector<std::vector<Value>> Rows(Database& db, const std::string& sql) {
  auto rs = db.Execute(sql);
  STRIP_CHECK_MSG(rs.ok(), "query failed in test helper");
  return rs->rows;
}

TEST(SnapshotTest, RoundTripRestoresEveryRow) {
  TempDir dir;
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(kSchema));
  ASSERT_OK(db.Execute("insert into quotes values ('ibm', 50.5)").status());
  ASSERT_OK(db.Execute("insert into quotes values ('hp', 20.25)").status());
  ASSERT_OK(db.Execute("insert into counts values ('a', 7)").status());

  SnapshotData snap = CaptureSnapshot(db, 42);
  EXPECT_EQ(snap.lsn, 42u);
  std::string path = dir.path("state.snap");
  ASSERT_OK(WriteSnapshot(snap, path));

  ASSERT_OK_AND_ASSIGN(SnapshotData loaded, LoadSnapshot(path));
  EXPECT_EQ(loaded.lsn, 42u);

  Database db2(LogicalTime());
  ASSERT_OK(db2.ExecuteScript(kSchema));
  ASSERT_OK(RestoreSnapshot(db2, loaded));
  EXPECT_EQ(Rows(db2, "select * from quotes order by symbol"),
            Rows(db, "select * from quotes order by symbol"));
  EXPECT_EQ(Rows(db2, "select * from counts order by k"),
            Rows(db, "select * from counts order by k"));
}

TEST(SnapshotTest, EveryBodyByteFlipIsRejected) {
  TempDir dir;
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(kSchema));
  ASSERT_OK(db.Execute("insert into quotes values ('ibm', 50.5)").status());
  std::string path = dir.path("state.snap");
  ASSERT_OK(WriteSnapshot(CaptureSnapshot(db, 1), path));
  std::string good = ReadFile(path);

  // Header: magic + version + lsn + body length + CRC = 24 bytes; the CRC
  // covers the body, so every body flip must fail the load.
  for (size_t i = 24; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    WriteFile(path, bad);
    EXPECT_FALSE(LoadSnapshot(path).ok()) << "body byte " << i;
  }

  std::string bad_magic = good;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0xff);
  WriteFile(path, bad_magic);
  EXPECT_FALSE(LoadSnapshot(path).ok());

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(bad_version[4] ^ 0xff);
  WriteFile(path, bad_version);
  EXPECT_FALSE(LoadSnapshot(path).ok());

  // Truncation at every byte fails too (a partially synced file).
  for (size_t cut = 0; cut < good.size(); ++cut) {
    WriteFile(path, good.substr(0, cut));
    EXPECT_FALSE(LoadSnapshot(path).ok()) << "truncated to " << cut;
  }
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  TempDir dir;
  auto r = LoadSnapshot(dir.path("absent.snap"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, RestoreRejectsMismatchedSchemaAndNonEmptyTables) {
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(kSchema));
  ASSERT_OK(db.Execute("insert into quotes values ('ibm', 50.5)").status());
  SnapshotData snap = CaptureSnapshot(db, 1);

  // Same table names, different column type: loud failure, not a zip.
  Database mismatched(LogicalTime());
  ASSERT_OK(mismatched.ExecuteScript(R"(
    create table quotes (symbol string, price string);
    create index on quotes (symbol);
    create table counts (k string, n int);
    create index on counts (k);
  )"));
  EXPECT_FALSE(RestoreSnapshot(mismatched, snap).ok());

  // Restoring over live rows would double them.
  Database occupied(LogicalTime());
  ASSERT_OK(occupied.ExecuteScript(kSchema));
  ASSERT_OK(
      occupied.Execute("insert into quotes values ('x', 1.0)").status());
  EXPECT_FALSE(RestoreSnapshot(occupied, snap).ok());

  // A table missing entirely.
  Database missing(LogicalTime());
  ASSERT_OK(missing.ExecuteScript(R"(
    create table quotes (symbol string, price double);
    create index on quotes (symbol);
  )"));
  EXPECT_FALSE(RestoreSnapshot(missing, snap).ok());
}

// ---------------------------------------------------------------------------
// DurableLog: the full recover -> serve -> checkpoint -> recover cycle.
// ---------------------------------------------------------------------------

class DurableDb {
 public:
  explicit DurableDb(const std::string& dir)
      : db_(LogicalTime()), log_(DurableLog::Options{dir}) {
    Status st = db_.ExecuteScript(kSchema);
    STRIP_CHECK_MSG(st.ok(), "schema failed");
    auto imp = FeedImporter::Create(&db_, "quotes");
    STRIP_CHECK_MSG(imp.ok(), "importer failed");
    importer_ = imp.take();
  }

  Status Recover() {
    auto stats = log_.Recover(db_, [this](const std::string& table)
                                       -> Result<FeedImporter*> {
      if (table != "quotes") return Status::NotFound("no importer");
      return importer_.get();
    });
    STRIP_RETURN_IF_ERROR(stats.status());
    stats_ = *stats;
    return Status::OK();
  }

  // The server's ingest sequence: WAL append, sync (group commit), apply.
  Status Ingest(const FeedRecord& rec) {
    STRIP_RETURN_IF_ERROR(log_.Append("quotes", rec).status());
    STRIP_RETURN_IF_ERROR(log_.Sync());
    return importer_->ApplyNow(rec);
  }

  std::vector<std::vector<Value>> Table() {
    return Rows(db_, "select * from quotes order by symbol");
  }

  Database& db() { return db_; }
  DurableLog& log() { return log_; }
  const DurableLog::RecoveryStats& stats() const { return stats_; }

 private:
  Database db_;
  DurableLog log_;
  std::unique_ptr<FeedImporter> importer_;
  DurableLog::RecoveryStats stats_;
};

TEST(DurableLogTest, CrashReplayCheckpointAndTailRecovery) {
  TempDir dir;
  std::vector<std::vector<Value>> live_rows;

  {  // First life: ingest, then "crash" (no checkpoint, just destruction).
    DurableDb d(dir.path());
    ASSERT_OK(d.Recover());
    EXPECT_FALSE(d.stats().snapshot_loaded);
    EXPECT_EQ(d.stats().entries_replayed, 0u);
    ASSERT_OK(d.Ingest(Rec("ibm", 50.0)));
    ASSERT_OK(d.Ingest(Rec("hp", 20.0)));
    ASSERT_OK(d.Ingest(Rec("ibm", 51.0)));  // upsert: same key, new price
    live_rows = d.Table();
    ASSERT_EQ(live_rows.size(), 2u);
  }

  uint64_t checkpoint_lsn = 0;
  {  // Second life: WAL-only recovery must rebuild identical tables.
    DurableDb d(dir.path());
    ASSERT_OK(d.Recover());
    EXPECT_FALSE(d.stats().snapshot_loaded);
    EXPECT_EQ(d.stats().entries_replayed, 3u);
    EXPECT_EQ(d.stats().next_lsn, 4u);
    EXPECT_EQ(d.Table(), live_rows);

    ASSERT_OK_AND_ASSIGN(checkpoint_lsn, d.log().Checkpoint(d.db()));
    EXPECT_EQ(checkpoint_lsn, 3u);
    EXPECT_EQ(d.log().wal_bytes(), 0u);  // snapshot absorbed the log

    ASSERT_OK(d.Ingest(Rec("sun", 13.0)));  // tail past the checkpoint
    live_rows = d.Table();
    ASSERT_EQ(live_rows.size(), 3u);
  }

  {  // Third life: snapshot + WAL tail.
    DurableDb d(dir.path());
    ASSERT_OK(d.Recover());
    EXPECT_TRUE(d.stats().snapshot_loaded);
    EXPECT_EQ(d.stats().snapshot_lsn, checkpoint_lsn);
    EXPECT_EQ(d.stats().entries_replayed, 1u);
    EXPECT_EQ(d.stats().next_lsn, 5u);
    EXPECT_EQ(d.Table(), live_rows);
  }
}

TEST(DurableLogTest, TornTailIsDiscardedAndLogReopensCleanly) {
  TempDir dir;
  std::string wal_path;
  {
    DurableDb d(dir.path());
    ASSERT_OK(d.Recover());
    ASSERT_OK(d.Ingest(Rec("ibm", 50.0)));
    ASSERT_OK(d.Ingest(Rec("hp", 20.0)));
    wal_path = d.log().wal_path();
  }
  // Crash mid-append: garbage half-entry at the end of the log.
  std::string bytes = ReadFile(wal_path);
  WriteFile(wal_path, bytes + "WA\x01\x02");

  {
    DurableDb d(dir.path());
    ASSERT_OK(d.Recover());
    EXPECT_EQ(d.stats().entries_replayed, 2u);
    EXPECT_EQ(d.stats().torn_bytes_discarded, 4u);
    // The tail was truncated away, so appends extend the valid prefix.
    ASSERT_OK(d.Ingest(Rec("sun", 13.0)));
  }
  {
    DurableDb d(dir.path());
    ASSERT_OK(d.Recover());
    EXPECT_EQ(d.stats().entries_replayed, 3u);
    EXPECT_EQ(d.stats().torn_bytes_discarded, 0u);
    EXPECT_EQ(d.Table().size(), 3u);
  }
}

// REVIEW fix (high), replay side: a WAL entry that fails validation
// against the current schema (possible only from an older build's log —
// the live server now validates before appending) is skipped with a
// count, instead of refusing to boot forever.
TEST(DurableLogTest, RecoverSkipsEntriesThatFailValidation) {
  TempDir dir;
  {
    // Hand-craft a WAL with a wrong-arity record between valid ones, the
    // way a pre-validation server could have logged it.
    ASSERT_OK_AND_ASSIGN(
        auto wal, WalWriter::Open(dir.path("feed.wal"), 1,
                                  WalSyncPolicy::kManual));
    ASSERT_OK(wal->Append("quotes", Rec("ibm", 50.0)).status());
    FeedRecord bad;
    bad.values = {Value::Str("orphan")};  // arity 1 vs 2-column schema
    ASSERT_OK(wal->Append("quotes", bad).status());
    ASSERT_OK(wal->Append("quotes", Rec("hp", 20.0)).status());
    ASSERT_OK(wal->Sync());
  }
  DurableDb d(dir.path());
  ASSERT_OK(d.Recover());
  EXPECT_EQ(d.stats().entries_replayed, 3u);
  EXPECT_EQ(d.stats().entries_skipped, 1u);
  EXPECT_EQ(d.stats().next_lsn, 4u);
  EXPECT_EQ(d.Table().size(), 2u);  // the two valid records applied
  // The log stays appendable past the skip.
  ASSERT_OK(d.Ingest(Rec("sun", 13.0)));
}

TEST(DurableLogTest, RecoverFailsOnUnknownFeedTable) {
  TempDir dir;
  {
    DurableDb d(dir.path());
    ASSERT_OK(d.Recover());
    ASSERT_OK(d.Ingest(Rec("ibm", 50.0)));
  }
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(kSchema));
  DurableLog log(DurableLog::Options{dir.path()});
  auto stats = log.Recover(db, [](const std::string&) -> Result<FeedImporter*> {
    return Status::NotFound("importer registry empty");
  });
  EXPECT_FALSE(stats.ok());
}

}  // namespace
}  // namespace strip
