// Feed wire format (feed/wire.h): the byte-level shard-to-shard protocol.
// Round trips must be exact (doubles travel as bit patterns), and decode
// must reject torn or corrupted buffers without advancing the offset.

#include <gtest/gtest.h>

#include "strip/feed/wire.h"
#include "tests/test_util.h"

namespace strip {
namespace {

FeedRecord SampleRecord() {
  FeedRecord rec;
  rec.at = 1234567;
  rec.trace.trace_id = 7;
  rec.trace.span_id = 8;
  rec.trace.parent_span_id = 9;
  rec.values = {Value::Str("IBM"), Value::Double(101.625), Value::Int(-42),
                Value::Null(), Value::Str("")};
  return rec;
}

void ExpectSameRecord(const FeedRecord& a, const FeedRecord& b) {
  EXPECT_EQ(a.at, b.at);
  EXPECT_EQ(a.trace.trace_id, b.trace.trace_id);
  EXPECT_EQ(a.trace.span_id, b.trace.span_id);
  EXPECT_EQ(a.trace.parent_span_id, b.trace.parent_span_id);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].type(), b.values[i].type()) << "value " << i;
    EXPECT_EQ(a.values[i], b.values[i]) << "value " << i;
  }
}

TEST(WireTest, RoundTripsOneRecord) {
  FeedRecord rec = SampleRecord();
  std::string bytes = EncodeFeedRecord(rec);
  size_t offset = 0;
  ASSERT_OK_AND_ASSIGN(FeedRecord back, DecodeFeedRecord(bytes, &offset));
  EXPECT_EQ(offset, bytes.size());
  ExpectSameRecord(rec, back);
}

TEST(WireTest, DoubleRoundTripIsBitExact) {
  // Values that decimal formatting would mangle: the wire carries the
  // IEEE-754 bit pattern, so equality is exact, not approximate.
  for (double d : {0.1, 1.0 / 3.0, 1e-308, 1.7976931348623157e308,
                   -0.0, 101.0 + 5.0 / 8.0}) {
    FeedRecord rec;
    rec.values = {Value::Str("k"), Value::Double(d)};
    size_t offset = 0;
    ASSERT_OK_AND_ASSIGN(FeedRecord back,
                         DecodeFeedRecord(EncodeFeedRecord(rec), &offset));
    EXPECT_EQ(back.values[1].as_double(), d);
  }
}

TEST(WireTest, StreamOfConcatenatedRecordsDecodes) {
  std::string stream;
  std::vector<FeedRecord> sent;
  for (int i = 0; i < 5; ++i) {
    FeedRecord rec;
    rec.at = i * 1000;
    rec.values = {Value::Str("S" + std::to_string(i)), Value::Double(i * 1.5)};
    AppendFeedRecord(rec, &stream);
    sent.push_back(rec);
  }
  ASSERT_OK_AND_ASSIGN(std::vector<FeedRecord> got, DecodeFeedStream(stream));
  ASSERT_EQ(got.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ExpectSameRecord(sent[i], got[i]);
  }
}

TEST(WireTest, TruncationAtEveryPrefixFailsCleanly) {
  std::string bytes = EncodeFeedRecord(SampleRecord());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    size_t offset = 0;
    auto r = DecodeFeedRecord(std::string_view(bytes.data(), cut), &offset);
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(offset, 0u) << "offset advanced on failure at " << cut;
  }
}

TEST(WireTest, RejectsBadMagicVersionAndTag) {
  std::string bytes = EncodeFeedRecord(SampleRecord());
  size_t offset = 0;

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeFeedRecord(bad_magic, &offset).ok());
  EXPECT_EQ(offset, 0u);

  std::string bad_version = bytes;
  bad_version[1] = static_cast<char>(kWireVersion + 1);
  EXPECT_FALSE(DecodeFeedRecord(bad_version, &offset).ok());

  // Corrupt the first value's type tag (right after the fixed header:
  // magic + version + at + 3 trace ids + count).
  std::string bad_tag = bytes;
  bad_tag[1 + 1 + 8 + 24 + 4] = 0x7f;
  EXPECT_FALSE(DecodeFeedRecord(bad_tag, &offset).ok());
}

// Regression: the value-count field is attacker-controlled. A record
// header claiming 2^32-1 values must fail on the bytes it actually has,
// not reserve gigabytes up front (the old code passed the raw count to
// vector::reserve before reading a single value).
TEST(WireTest, PoisonedValueCountDoesNotOverAllocate) {
  std::string bytes = EncodeFeedRecord(SampleRecord());
  // Count lives after magic + version + at + 3 trace ids.
  const size_t count_off = 1 + 1 + 8 + 24;
  for (uint32_t evil : {0xFFFFFFFFu, 0x10000000u, 1000000u}) {
    std::string bad = bytes;
    for (int i = 0; i < 4; ++i) {
      bad[count_off + i] = static_cast<char>((evil >> (8 * i)) & 0xff);
    }
    size_t offset = 0;
    auto r = DecodeFeedRecord(bad, &offset);
    EXPECT_FALSE(r.ok()) << "count " << evil << " decoded";
    EXPECT_EQ(offset, 0u);
  }
}

// Satellite sweep: a multi-record stream truncated at EVERY byte offset
// must produce a clean error (the stream decoder is all-or-nothing) —
// never a crash, never a giant allocation.
TEST(WireTest, StreamTruncationSweepFailsCleanly) {
  std::string stream;
  size_t whole_records = 0;
  std::vector<size_t> boundaries = {0};
  for (int i = 0; i < 4; ++i) {
    FeedRecord rec;
    rec.at = i;
    rec.values = {Value::Str("sym" + std::to_string(i)),
                  Value::Double(i * 2.5), Value::Str(std::string(i * 3, 'x'))};
    AppendFeedRecord(rec, &stream);
    boundaries.push_back(stream.size());
    ++whole_records;
  }
  ASSERT_OK_AND_ASSIGN(std::vector<FeedRecord> all, DecodeFeedStream(stream));
  ASSERT_EQ(all.size(), whole_records);

  for (size_t cut = 0; cut < stream.size(); ++cut) {
    // Skip exact record boundaries: those prefixes are valid streams.
    bool on_boundary = false;
    for (size_t b : boundaries) on_boundary |= (b == cut);
    auto r = DecodeFeedStream(std::string_view(stream.data(), cut));
    if (on_boundary) {
      EXPECT_TRUE(r.ok()) << "boundary cut at " << cut;
    } else {
      EXPECT_FALSE(r.ok()) << "torn cut at " << cut << " decoded";
    }
  }
}

TEST(WireTest, SecondRecordDecodesAfterFirst) {
  FeedRecord a = SampleRecord();
  FeedRecord b;
  b.at = 99;
  b.values = {Value::Int(1), Value::Int(2)};
  std::string stream = EncodeFeedRecord(a);
  AppendFeedRecord(b, &stream);
  size_t offset = 0;
  ASSERT_OK_AND_ASSIGN(FeedRecord first, DecodeFeedRecord(stream, &offset));
  ASSERT_OK_AND_ASSIGN(FeedRecord second, DecodeFeedRecord(stream, &offset));
  EXPECT_EQ(offset, stream.size());
  ExpectSameRecord(a, first);
  ExpectSameRecord(b, second);
}

}  // namespace
}  // namespace strip
