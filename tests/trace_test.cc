// Causal-tracing tests (end-to-end trace propagation): TraceContext
// algebra, feed-to-action trace continuity on the deterministic simulated
// executor, parent-trace bookkeeping across unique-transaction merging,
// staleness propagation through delta folding (the net-effect path), and a
// threaded stress variant the TSan CI job runs.

#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "strip/common/string_util.h"
#include "strip/feed/feed.h"
#include "strip/obs/metrics.h"
#include "strip/obs/trace_context.h"
#include "strip/viewmaint/rule_gen.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Database::Options LogicalTime() {
  Database::Options o;
  o.mode = ExecutorMode::kSimulated;
  o.advance_clock_by_cost = false;
  return o;
}

// --- TraceContext ----------------------------------------------------------

TEST(TraceContext, RootsAreNonZeroAndUnique) {
  TraceContext a = NewTraceContext();
  TraceContext b = NewTraceContext();
  EXPECT_TRUE(a.traced());
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(a.span_id, 0u);
  EXPECT_EQ(a.parent_span_id, 0u);
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
}

TEST(TraceContext, ChildKeepsTraceAndLinksParentSpan) {
  TraceContext root = NewTraceContext();
  TraceContext child = ChildOf(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  TraceContext grandchild = ChildOf(child);
  EXPECT_EQ(grandchild.trace_id, root.trace_id);
  EXPECT_EQ(grandchild.parent_span_id, child.span_id);
}

TEST(TraceContext, ChildOfUntracedStartsAFreshRoot) {
  TraceContext untraced;
  EXPECT_FALSE(untraced.traced());
  TraceContext c = ChildOf(untraced);
  EXPECT_TRUE(c.traced());
  EXPECT_EQ(c.parent_span_id, 0u);  // never a child of trace 0
}

// --- End-to-end propagation (simulated, deterministic) ---------------------

/// Everything the observer needs from a finished task.
struct SeenTask {
  std::string function_name;
  TraceContext trace;
  std::vector<uint64_t> merged_parent_traces;
  Timestamp commit_staleness_micros;
  uint64_t deltas_folded;
};

class TracePropagationTest : public ::testing::Test {
 protected:
  TracePropagationTest() : db_(LogicalTime()) {}

  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      create table quotes (symbol string, price double);
      create index on quotes (symbol);
      insert into quotes values ('ibm', 1.0), ('hp', 1.0);
      create table derived (symbol string, last double, fires int);
      create index on derived (symbol);
      insert into derived values ('ibm', 0.0, 0), ('hp', 0.0, 0);
    )"));
    ASSERT_OK(db_.RegisterFunction(
        "track", [](FunctionContext& ctx) -> Status {
          const TempTable* changed = ctx.BoundTable("changed");
          if (changed == nullptr || changed->size() == 0) {
            return Status::Internal("track: empty bound table");
          }
          const std::string sym = changed->Get(0, 0).as_string();
          return ctx.Exec(StrFormat("update derived set fires += 1 "
                                    "where symbol = '%s'",
                                    sym.c_str()))
              .status();
        }));
    ASSERT_OK(db_.Execute(R"(
      create rule track on quotes when updated price
      if select new.symbol as symbol from new bind as changed
      then execute track unique on symbol after 0.5 seconds
    )")
                  .status());
    db_.executor().set_task_observer([this](const TaskControlBlock& t) {
      seen_.push_back({t.function_name, t.trace, t.merged_parent_traces,
                       t.commit_staleness_micros, t.deltas_folded});
    });
  }

  void TearDown() override { db_.executor().set_task_observer(nullptr); }

  const SeenTask* Find(const std::string& fn) const {
    for (const SeenTask& s : seen_) {
      if (s.function_name == fn) return &s;
    }
    return nullptr;
  }

  Database db_;
  std::vector<SeenTask> seen_;
};

TEST_F(TracePropagationTest, FeedRecordTraceReachesTheActionTask) {
  ASSERT_OK_AND_ASSIGN(auto importer, FeedImporter::Create(&db_, "quotes"));
  ASSERT_OK(importer->Submit(
      FeedRecord{100, {Value::Str("ibm"), Value::Double(50.0)}}));
  db_.simulated()->RunUntilQuiescent();

  // Two tasks ran: the feed upsert (unnamed) and the rule action.
  ASSERT_EQ(seen_.size(), 2u);
  const SeenTask& feed = seen_[0];
  const SeenTask* action = Find("track");
  ASSERT_NE(action, nullptr);
  // The feed task carries the root of the causal trace...
  EXPECT_TRUE(feed.trace.traced());
  EXPECT_EQ(feed.trace.parent_span_id, 0u);
  // ...and the action task continues the SAME trace, linked through the
  // feed transaction's span (feed root -> txn span -> action task span).
  EXPECT_EQ(action->trace.trace_id, feed.trace.trace_id);
  EXPECT_NE(action->trace.span_id, feed.trace.span_id);
  EXPECT_NE(action->trace.parent_span_id, 0u);
  EXPECT_EQ(action->merged_parent_traces.size(), 0u);
}

TEST_F(TracePropagationTest, MergedFiringRecordsItsTriggersTraceId) {
  ASSERT_OK_AND_ASSIGN(auto importer, FeedImporter::Create(&db_, "quotes"));
  // Two records for the same symbol inside one 0.5 s delay window: the
  // second firing merges into the queued unique task.
  ASSERT_OK(importer->Submit(
      FeedRecord{0, {Value::Str("ibm"), Value::Double(50.0)}}));
  ASSERT_OK(importer->Submit(FeedRecord{
      SecondsToMicros(0.1), {Value::Str("ibm"), Value::Double(51.0)}}));
  db_.simulated()->RunUntilQuiescent();
  EXPECT_EQ(db_.rules().stats().firings_merged.load(), 1u);

  ASSERT_EQ(seen_.size(), 3u);  // two feed upserts, ONE merged action
  const SeenTask& feed1 = seen_[0];
  const SeenTask& feed2 = seen_[1];
  const SeenTask* action = Find("track");
  ASSERT_NE(action, nullptr);
  EXPECT_NE(feed1.trace.trace_id, feed2.trace.trace_id);
  // The task belongs to the first trigger's trace; the merged trigger's
  // trace id is preserved alongside so neither causal chain is lost.
  EXPECT_EQ(action->trace.trace_id, feed1.trace.trace_id);
  ASSERT_EQ(action->merged_parent_traces.size(), 1u);
  EXPECT_EQ(action->merged_parent_traces[0], feed2.trace.trace_id);
}

TEST_F(TracePropagationTest, CascadedRuleContinuesTheTrace) {
  // A second rule fires off the first rule's action commit; the cascade
  // must stay inside the original feed record's trace.
  ASSERT_OK(db_.ExecuteScript("create table audit (n int);"
                              "insert into audit values (0);"));
  ASSERT_OK(db_.RegisterFunction(
      "cascade", [](FunctionContext& ctx) -> Status {
        return ctx.Exec("update audit set n += 1").status();
      }));
  ASSERT_OK(db_.Execute(R"(
    create rule cascade on derived when updated fires
    then execute cascade unique after 0.1 seconds
  )")
                .status());

  ASSERT_OK_AND_ASSIGN(auto importer, FeedImporter::Create(&db_, "quotes"));
  ASSERT_OK(importer->Submit(
      FeedRecord{100, {Value::Str("hp"), Value::Double(20.0)}}));
  db_.simulated()->RunUntilQuiescent();

  const SeenTask& feed = seen_[0];
  const SeenTask* first = Find("track");
  const SeenTask* second = Find("cascade");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->trace.trace_id, feed.trace.trace_id);
  EXPECT_EQ(second->trace.trace_id, feed.trace.trace_id);
  EXPECT_NE(second->trace.span_id, first->trace.span_id);
}

// --- Staleness through delta folding (satellite of the probe work) ---------

TEST(StalenessFold, CommitStalenessReflectsOldestFoldedUpdate) {
  // Two same-group base updates at t=0 and t=1 s batch into ONE generated
  // maintenance firing (2 s window). The contributions fold to a single
  // net delta; the commit's staleness must still be measured from the
  // OLDEST update (t=0), not the one that survived the fold.
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(R"(
    create table sales (region string, amount double);
    create index on sales (region);
    insert into sales values ('eu', 10.0), ('eu', 20.0);
    create materialized view rev as
      select region, sum(amount) as total from sales group by region;
  )"));
  RuleGenOptions gen;
  gen.delay_seconds = 2.0;
  ASSERT_OK_AND_ASSIGN(GeneratedRule rule,
                       GenerateMaintenanceRule(db, "rev", "sales", gen));

  Timestamp staleness = -1;
  uint64_t folded = 0;
  uint32_t batched = 0;
  db.executor().set_task_observer([&](const TaskControlBlock& t) {
    if (t.function_name != rule.function_name) return;
    staleness = t.commit_staleness_micros;
    folded = t.deltas_folded;
    batched = t.batched_firings;
  });

  // t=0: first change; the maintenance task queues for release at t=2s.
  ASSERT_OK(
      db.Execute("update sales set amount += 1.0 where region = 'eu'")
          .status());
  db.simulated()->RunUntil(SecondsToMicros(1.0));
  // t=1s: second change merges into the queued task.
  ASSERT_OK(
      db.Execute("update sales set amount += 2.0 where region = 'eu'")
          .status());
  EXPECT_EQ(db.rules().stats().firings_merged.load(), 1u);
  db.simulated()->RunUntilQuiescent();
  db.executor().set_task_observer(nullptr);

  EXPECT_EQ(batched, 2u);
  // Commit at t=2s, oldest batched change at t=0: staleness is 2 s even
  // though that contribution was folded away.
  EXPECT_EQ(staleness, SecondsToMicros(2.0));
  // Both updates touched the same group: 4 transition deltas (old+new per
  // update) collapsed into fewer net rows, and the fold was credited.
  EXPECT_GT(folded, 0u);

  // The view converged to the base data.
  auto rs = db.Execute("select total from rev where region = 'eu'");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 36.0);  // 13 + 23
}

// --- Threaded stress (runs under TSan in CI) -------------------------------

TEST(ThreadedTraceStress, TracesSurviveWorkStealingAndMerging) {
  constexpr int kRecords = 300;
  constexpr int kSyms = 8;
  Database::Options opts;
  opts.mode = ExecutorMode::kThreaded;
  opts.num_workers = 4;
  Database db(opts);
  ASSERT_OK(db.ExecuteScript(R"(
    create table quotes (symbol string, price double);
    create index on quotes (symbol);
    create table counts (symbol string, fires int);
    create index on counts (symbol);
  )"));
  for (int i = 0; i < kSyms; ++i) {
    // Pre-populate both tables: every feed record is then a keyed UPDATE
    // (the rule's event), like the PTA experiments' populated stocks.
    ASSERT_OK(
        db.Execute(StrFormat("insert into quotes values ('s%d', 1.0)", i))
            .status());
    ASSERT_OK(db.Execute(StrFormat("insert into counts values ('s%d', 0)", i))
                  .status());
  }
  ASSERT_OK(db.RegisterFunction(
      "count_fire", [](FunctionContext& ctx) -> Status {
        const TempTable* changed = ctx.BoundTable("changed");
        if (changed == nullptr || changed->size() == 0) {
          return Status::Internal("count_fire: empty bound table");
        }
        const std::string sym = changed->Get(0, 0).as_string();
        return ctx.Exec(StrFormat("update counts set fires += 1 "
                                  "where symbol = '%s'",
                                  sym.c_str()))
            .status();
      }));
  ASSERT_OK(db.Execute(R"(
    create rule count_fire on quotes when updated price
    if select new.symbol as symbol from new bind as changed
    then execute count_fire unique on symbol after 0.01 seconds
  )")
                .status());

  std::mutex mu;
  std::set<uint64_t> feed_traces;
  std::vector<SeenTask> actions;
  uint64_t ok_actions = 0;
  db.executor().set_task_observer([&](const TaskControlBlock& t) {
    std::lock_guard<std::mutex> lk(mu);
    if (t.function_name.empty()) {
      feed_traces.insert(t.trace.trace_id);
    } else if (t.function_name == "count_fire") {
      if (t.result.ok()) ++ok_actions;
      actions.push_back({t.function_name, t.trace, t.merged_parent_traces,
                         t.commit_staleness_micros, t.deltas_folded});
    }
  });

  ASSERT_OK_AND_ASSIGN(auto importer, FeedImporter::Create(&db, "quotes"));
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_OK(importer->Submit(FeedRecord{
        0,
        {Value::Str(StrFormat("s%d", i % kSyms)),
         Value::Double(100.0 + i)}}));
  }
  db.threaded()->Drain();
  db.executor().set_task_observer(nullptr);

  std::lock_guard<std::mutex> lk(mu);
  // The importer applies one attempt per record (wait-die victims in the
  // same-instant burst are simply dropped — the feed's documented policy),
  // so only completeness of the ledger is asserted, not zero failures.
  EXPECT_EQ(importer->records_submitted(), (uint64_t)kRecords);
  EXPECT_EQ(importer->records_applied() + importer->records_failed(),
            (uint64_t)kRecords);
  EXPECT_GT(importer->records_applied(), 0u);
  ASSERT_FALSE(actions.empty());
  // Every action task belongs to some feed record's trace — stolen or
  // merged, no firing lost its causal identity — and every merged parent
  // is a real feed trace distinct from the task's own.
  for (const SeenTask& a : actions) {
    EXPECT_TRUE(a.trace.traced());
    EXPECT_TRUE(feed_traces.count(a.trace.trace_id)) << a.trace.trace_id;
    for (uint64_t merged : a.merged_parent_traces) {
      EXPECT_TRUE(feed_traces.count(merged));
      EXPECT_NE(merged, a.trace.trace_id);
    }
  }
  // The per-rule cost instruments agree with what the observer saw.
  const Histogram* exec =
      db.metrics().FindHistogram("rules.exec_us.count_fire");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->count(), actions.size());
  const Histogram* qw =
      db.metrics().FindHistogram("rules.queue_wait_us.count_fire");
  ASSERT_NE(qw, nullptr);
  EXPECT_EQ(qw->count(), actions.size());
  // All successful fires landed: counts sums to the number of committed
  // actions (merging batches firings, so actions <= records).
  auto rs = db.Execute("select sum(fires) as n from counts");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0].as_double(), static_cast<double>(ok_actions));
}

}  // namespace
}  // namespace strip
