// Unit tests for the storage layer: schemas, tables (copy-on-write rows,
// row-id map, resurrection), hash / red-black-tree indexes, catalog.

#include <gtest/gtest.h>

#include "strip/storage/catalog.h"
#include "strip/storage/table.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Schema TwoColumnSchema() {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  s.AddColumn("v", ValueType::kDouble);
  return s;
}

TEST(SchemaTest, ColumnsAreLowerCasedAndFound) {
  Schema s;
  s.AddColumn("Price", ValueType::kDouble);
  EXPECT_EQ(s.column(0).name, "price");
  EXPECT_EQ(s.FindColumn("PRICE"), 0);
  EXPECT_EQ(s.FindColumn("nope"), -1);
}

TEST(SchemaTest, Equals) {
  Schema a = TwoColumnSchema();
  Schema b = TwoColumnSchema();
  EXPECT_TRUE(a.Equals(b));
  b.AddColumn("extra", ValueType::kInt);
  EXPECT_FALSE(a.Equals(b));
  Schema c;
  c.AddColumn("k", ValueType::kString);
  c.AddColumn("v", ValueType::kInt);  // different type
  EXPECT_FALSE(a.Equals(c));
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(TwoColumnSchema().ToString(), "(k string, v double)");
}

// --- PageManager (slotted arena pages) -------------------------------------

TEST(PageManagerTest, AllocateReusesTombstonedSlots) {
  PageManager pm;
  RowHandle a = pm.Allocate();
  RowHandle b = pm.Allocate();
  EXPECT_EQ(pm.live(), 2u);
  EXPECT_EQ(pm.num_pages(), 1u);
  a->rec = MakeRecord({Value::Int(1)});
  b->rec = MakeRecord({Value::Int(2)});
  RecordRef pinned = a->rec;
  pm.Release(a);
  EXPECT_EQ(pm.live(), 1u);
  // Tombstoning drops the page's pin immediately; ours is the only one.
  EXPECT_EQ(pinned.use_count(), 1);
  // The freed slot is reused before any new page is touched.
  RowHandle c = pm.Allocate();
  EXPECT_EQ(c.page(), a.page());
  EXPECT_EQ(c.slot(), a.slot());
  EXPECT_EQ(pm.num_pages(), 1u);
  c->rec = MakeRecord({Value::Int(3)});
  ASSERT_OK(pm.CheckConsistency());
}

TEST(PageManagerTest, SpillsToSecondPageAndScansAcrossBoth) {
  PageManager pm;
  for (uint32_t i = 0; i < RowPage::kSlots + 10; ++i) {
    RowHandle h = pm.Allocate();
    h->id = i + 1;
    h->rec = MakeRecord({Value::Int(static_cast<int64_t>(i))});
  }
  EXPECT_EQ(pm.num_pages(), 2u);
  EXPECT_EQ(pm.live(), RowPage::kSlots + 10u);
  // Batched scan visits every live row exactly once.
  PageManager::ScanPos pos;
  ScanBatch batch;
  size_t seen = 0;
  uint64_t id_sum = 0;
  while (pm.NextBatch(pos, batch)) {
    for (size_t i = 0; i < batch.count; ++i) {
      ++seen;
      id_sum += batch.rows[i]->id;
    }
  }
  size_t n = RowPage::kSlots + 10;
  EXPECT_EQ(seen, n);
  EXPECT_EQ(id_sum, static_cast<uint64_t>(n) * (n + 1) / 2);
  // And so does the iterator scan.
  size_t iterated = 0;
  for (const Row& row : pm) {
    (void)row;
    ++iterated;
  }
  EXPECT_EQ(iterated, n);
  ASSERT_OK(pm.CheckConsistency());
}

TEST(PageManagerTest, BatchedScanSkipsTombstones) {
  PageManager pm;
  std::vector<RowHandle> handles;
  for (int i = 0; i < 300; ++i) {
    RowHandle h = pm.Allocate();
    h->id = static_cast<uint64_t>(i) + 1;
    h->rec = MakeRecord({Value::Int(i)});
    handles.push_back(h);
  }
  for (size_t i = 0; i < handles.size(); i += 2) pm.Release(handles[i]);
  EXPECT_EQ(pm.live(), 150u);
  PageManager::ScanPos pos;
  ScanBatch batch;
  size_t seen = 0;
  while (pm.NextBatch(pos, batch)) {
    for (size_t i = 0; i < batch.count; ++i) {
      EXPECT_EQ(batch.rows[i]->id % 2, 0u) << "scan surfaced a tombstone";
      ++seen;
    }
  }
  EXPECT_EQ(seen, 150u);
  ASSERT_OK(pm.CheckConsistency());
}

TEST(PageManagerTest, ConsistencyCheckCatchesPlantedCorruption) {
  PageManager pm;
  RowHandle h = pm.Allocate();
  h->id = 1;
  h->rec = MakeRecord({Value::Int(1)});
  ASSERT_OK(pm.CheckConsistency());

  // Bitmap bit set for a slot with no record.
  pm.page(0)->live[3] |= 1ull << 7;
  EXPECT_EQ(pm.CheckConsistency().code(), StatusCode::kInternal);
  pm.page(0)->live[3] &= ~(1ull << 7);
  ASSERT_OK(pm.CheckConsistency());

  // A tombstone still pinning a record.
  pm.page(0)->slots[9].rec = h->rec;
  EXPECT_EQ(pm.CheckConsistency().code(), StatusCode::kInternal);
  pm.page(0)->slots[9].rec.reset();
  ASSERT_OK(pm.CheckConsistency());

  // live_count out of step with the bitmap.
  ++pm.page(0)->live_count;
  EXPECT_EQ(pm.CheckConsistency().code(), StatusCode::kInternal);
  --pm.page(0)->live_count;
  ASSERT_OK(pm.CheckConsistency());
}

TEST(TableTest, AuditPageConsistencyCoversDirectory) {
  Table t("t", TwoColumnSchema());
  ASSERT_OK_AND_ASSIGN(RowHandle r,
                       t.Insert(MakeRecord({Value::Str("a"), Value::Double(1)})));
  ASSERT_OK(t.AuditPageConsistency());
  // Corrupt the slot's id out from under the directory.
  uint64_t real_id = r->id;
  r->id = real_id + 100;
  Status st = t.AuditPageConsistency();
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  r->id = real_id;
  ASSERT_OK(t.AuditPageConsistency());
}

TEST(TableTest, EraseInsertChurnKeepsAuditGreen) {
  Table t("t", TwoColumnSchema());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK_AND_ASSIGN(
        RowHandle r,
        t.Insert(MakeRecord({Value::Str("x"), Value::Double(i)})));
    ids.push_back(r->id);
  }
  // Erase half, resurrect some, insert fresh — the arena must stay
  // consistent with the directory throughout.
  for (size_t i = 0; i < ids.size(); i += 2) t.Erase(t.FindRow(ids[i]));
  ASSERT_OK(t.AuditPageConsistency());
  for (size_t i = 0; i < ids.size(); i += 4) {
    ASSERT_OK(t.ResurrectRow(ids[i],
                             MakeRecord({Value::Str("y"), Value::Double(1)}))
                  .status());
  }
  for (int i = 0; i < 16; ++i) {
    ASSERT_OK(
        t.Insert(MakeRecord({Value::Str("z"), Value::Double(i)})).status());
  }
  ASSERT_OK(t.AuditPageConsistency());
  EXPECT_EQ(t.size(), 64u - 32u + 16u + 16u);
}

TEST(TableTest, ReserveKeepsHandlesAndContentsIntact) {
  Table t("t", TwoColumnSchema());
  ASSERT_OK_AND_ASSIGN(RowHandle r,
                       t.Insert(MakeRecord({Value::Str("a"), Value::Double(1)})));
  t.Reserve(100'000);  // page directory + id map only; pages stay lazy
  EXPECT_EQ(t.rows().num_pages(), 1u);
  EXPECT_EQ(t.FindRow(r->id), r);
  EXPECT_EQ(r->rec->values[0].as_string(), "a");
  ASSERT_OK(t.AuditPageConsistency());
}

TEST(TableTest, InsertAssignsStableRowIds) {
  Table t("t", TwoColumnSchema());
  ASSERT_OK_AND_ASSIGN(RowHandle r1,
                       t.Insert(MakeRecord({Value::Str("a"), Value::Double(1)})));
  ASSERT_OK_AND_ASSIGN(RowHandle r2,
                       t.Insert(MakeRecord({Value::Str("b"), Value::Double(2)})));
  EXPECT_NE(r1->id, r2->id);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.FindRow(r1->id), r1);
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  Table t("t", TwoColumnSchema());
  EXPECT_EQ(t.Insert(MakeRecord({Value::Str("a")})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Insert(MakeRecord({Value::Int(1), Value::Double(1)}))
                .status().code(),
            StatusCode::kInvalidArgument);
  // Ints coerce into double columns.
  ASSERT_OK_AND_ASSIGN(RowHandle r,
                       t.Insert(MakeRecord({Value::Str("a"), Value::Int(3)})));
  EXPECT_EQ(r->rec->values[1].type(), ValueType::kDouble);
  // Nulls are allowed in any column.
  EXPECT_OK(t.Insert(MakeRecord({Value::Null(), Value::Null()})).status());
}

TEST(TableTest, UpdateIsCopyOnWrite) {
  Table t("t", TwoColumnSchema());
  ASSERT_OK_AND_ASSIGN(RowHandle r,
                       t.Insert(MakeRecord({Value::Str("a"), Value::Double(1)})));
  RecordRef old_rec = r->rec;
  uint64_t id = r->id;
  ASSERT_OK(t.Update(r, MakeRecord({Value::Str("a"), Value::Double(9)})));
  // The old record object is unchanged (held alive by our reference, §6.1);
  // the row slot holds a new version under the same row id.
  EXPECT_DOUBLE_EQ(old_rec->values[1].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(r->rec->values[1].as_double(), 9.0);
  EXPECT_EQ(r->id, id);
  EXPECT_NE(old_rec.get(), r->rec.get());
}

TEST(TableTest, EraseRemovesFromIdMap) {
  Table t("t", TwoColumnSchema());
  ASSERT_OK_AND_ASSIGN(RowHandle r,
                       t.Insert(MakeRecord({Value::Str("a"), Value::Double(1)})));
  uint64_t id = r->id;
  t.Erase(r);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.FindRow(id));
}

TEST(TableTest, ResurrectRestoresRowUnderOldId) {
  Table t("t", TwoColumnSchema());
  ASSERT_OK_AND_ASSIGN(RowHandle r,
                       t.Insert(MakeRecord({Value::Str("a"), Value::Double(1)})));
  uint64_t id = r->id;
  RecordRef rec = r->rec;
  t.Erase(r);
  ASSERT_OK_AND_ASSIGN(RowHandle back, t.ResurrectRow(id, rec));
  EXPECT_EQ(back->id, id);
  EXPECT_EQ(t.FindRow(id), back);
  // Resurrecting a live id fails.
  EXPECT_EQ(t.ResurrectRow(id, rec).status().code(),
            StatusCode::kFailedPrecondition);
}

class IndexedTableTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  IndexedTableTest() : table_("t", TwoColumnSchema()) {
    Status st = table_.CreateTableIndex("k", GetParam());
    EXPECT_TRUE(st.ok());
  }

  void Insert(const std::string& k, double v) {
    auto r = table_.Insert(MakeRecord({Value::Str(k), Value::Double(v)}));
    ASSERT_TRUE(r.ok());
  }

  Table table_;
};

TEST_P(IndexedTableTest, LookupFindsAllDuplicates) {
  Insert("a", 1);
  Insert("b", 2);
  Insert("a", 3);
  auto rows = table_.IndexLookup(0, Value::Str("a"));
  EXPECT_EQ(rows.size(), 2u);
  rows = table_.IndexLookup(0, Value::Str("b"));
  EXPECT_EQ(rows.size(), 1u);
  rows = table_.IndexLookup(0, Value::Str("zzz"));
  EXPECT_TRUE(rows.empty());
}

TEST_P(IndexedTableTest, IndexTracksUpdatesOfKeyColumn) {
  Insert("a", 1);
  RowHandle r = table_.IndexLookup(0, Value::Str("a"))[0];
  ASSERT_OK(table_.Update(r, MakeRecord({Value::Str("z"), Value::Double(1)})));
  EXPECT_TRUE(table_.IndexLookup(0, Value::Str("a")).empty());
  EXPECT_EQ(table_.IndexLookup(0, Value::Str("z")).size(), 1u);
}

TEST_P(IndexedTableTest, IndexTracksErase) {
  Insert("a", 1);
  Insert("a", 2);
  RowHandle r = table_.IndexLookup(0, Value::Str("a"))[0];
  table_.Erase(r);
  EXPECT_EQ(table_.IndexLookup(0, Value::Str("a")).size(), 1u);
}

TEST_P(IndexedTableTest, IndexBuiltOverExistingRows) {
  Insert("x", 1);
  Insert("y", 2);
  // Second index on the other column, built after the fact.
  ASSERT_OK(table_.CreateTableIndex("v", GetParam()));
  EXPECT_EQ(table_.IndexLookup(1, Value::Double(2)).size(), 1u);
}

TEST_P(IndexedTableTest, DuplicateIndexRejected) {
  EXPECT_EQ(table_.CreateTableIndex("k", GetParam()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(table_.CreateTableIndex("nope", GetParam()).code(),
            StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, IndexedTableTest,
                         ::testing::Values(IndexKind::kHash,
                                           IndexKind::kRbTree),
                         [](const auto& info) {
                           return info.param == IndexKind::kHash ? "Hash"
                                                                 : "RbTree";
                         });

TEST(RbTreeIndexTest, RangeLookupIsOrdered) {
  RbTreeIndex idx("i", 0);
  Table t("t", TwoColumnSchema());
  std::vector<RowHandle> iters;
  for (int i = 0; i < 10; ++i) {
    auto r = t.Insert(
        MakeRecord({Value::Str("k" + std::to_string(i)), Value::Double(i)}));
    ASSERT_TRUE(r.ok());
    idx.Insert(Value::Int(9 - i), *r);  // insert keys in reverse
  }
  std::vector<RowHandle> out;
  idx.LookupRange(Value::Int(3), Value::Int(6), out);
  ASSERT_EQ(out.size(), 4u);
  // Range scan returns rows in ascending key order: keys 3,4,5,6 map to
  // rows k6,k5,k4,k3.
  EXPECT_EQ(out[0]->rec->values[0], Value::Str("k6"));
  EXPECT_EQ(out[3]->rec->values[0], Value::Str("k3"));
}

TEST(CatalogTest, CreateFindDrop) {
  Catalog c;
  ASSERT_OK_AND_ASSIGN(Table * t, c.CreateTable("Foo", TwoColumnSchema()));
  EXPECT_EQ(t->name(), "foo");
  EXPECT_EQ(c.FindTable("FOO"), t);
  EXPECT_EQ(c.GetTable("foo").value(), t);
  EXPECT_EQ(c.CreateTable("foo", TwoColumnSchema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(c.num_tables(), 1u);
  ASSERT_OK(c.DropTable("foo"));
  EXPECT_EQ(c.FindTable("foo"), nullptr);
  EXPECT_EQ(c.DropTable("foo").code(), StatusCode::kNotFound);
  EXPECT_EQ(c.GetTable("foo").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, ListTablesSorted) {
  Catalog c;
  EXPECT_OK(c.CreateTable("zebra", TwoColumnSchema()).status());
  EXPECT_OK(c.CreateTable("apple", TwoColumnSchema()).status());
  auto names = c.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "apple");
  EXPECT_EQ(names[1], "zebra");
}

}  // namespace
}  // namespace strip
