// Prepared statements, the plan cache, and their DDL-invalidation
// behavior, plus the compiled-vs-interpreted equivalence sweep: the same
// statements executed through slot-compiled programs and through the
// tree-walking interpreter must produce identical results.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "strip/common/string_util.h"
#include "strip/engine/database.h"
#include "strip/market/populate.h"
#include "strip/market/trace.h"
#include "tests/test_util.h"

namespace strip {
namespace {

void SeedTable(Database& db) {
  ASSERT_OK(db.ExecuteScript(
      "create table t (k string, v double);"
      "insert into t values ('a', 1.0), ('b', 2.0), ('c', 3.0);"));
}

TEST(PreparedStatementTest, ParamRebindingAcrossExecutions) {
  Database db;
  SeedTable(db);
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr update,
                       db.Prepare("update t set v = ? where k = ?"));
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr select,
                       db.Prepare("select v from t where k = ?"));

  // Same handle, different bindings, each execution independent.
  ASSERT_OK(update->Execute({Value::Double(10.0), Value::Str("a")}).status());
  ASSERT_OK(update->Execute({Value::Double(20.0), Value::Str("b")}).status());

  ASSERT_OK_AND_ASSIGN(ResultSet ra, select->Execute({Value::Str("a")}));
  ASSERT_EQ(ra.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(ra.rows[0][0].as_double(), 10.0);
  ASSERT_OK_AND_ASSIGN(ResultSet rb, select->Execute({Value::Str("b")}));
  ASSERT_EQ(rb.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rb.rows[0][0].as_double(), 20.0);
  ASSERT_OK_AND_ASSIGN(ResultSet rc, select->Execute({Value::Str("c")}));
  ASSERT_EQ(rc.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rc.rows[0][0].as_double(), 3.0);
}

TEST(PreparedStatementTest, UnboundParameterFailsCleanly) {
  Database db;
  SeedTable(db);
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr update,
                       db.Prepare("update t set v = ? where k = ?"));
  auto r = update->Execute({Value::Double(1.0)});  // ?2 missing
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("parameter"), std::string::npos)
      << r.status().ToString();
  // The failed execution must not leave a half-applied transaction.
  ASSERT_OK_AND_ASSIGN(ResultSet rs,
                       db.Execute("select v from t where k = 'a'"));
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 1.0);
}

TEST(PreparedStatementTest, PlanCacheSharesHandlesAndNormalizes) {
  Database db;
  SeedTable(db);
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr h1,
                       db.Prepare("select v from t where k = 'a'"));
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr h2,
                       db.Prepare("select v from t where k = 'a'"));
  EXPECT_EQ(h1.get(), h2.get());
  // Case / whitespace variants normalize to the same cache key; quoted
  // literals stay case-sensitive.
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr h3,
                       db.Prepare("SELECT  v  FROM t\n WHERE k = 'a'"));
  EXPECT_EQ(h1.get(), h3.get());
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr h4,
                       db.Prepare("select v from t where k = 'A'"));
  EXPECT_NE(h1.get(), h4.get());

  auto stats = db.plan_cache_stats();
  EXPECT_GE(stats.hits, 2u);
  EXPECT_GE(stats.misses, 2u);
  EXPECT_GE(stats.entries, 2u);
}

TEST(PreparedStatementTest, PlanCacheEvictsAtCapacity) {
  Database::Options opts;
  opts.plan_cache_capacity = 4;
  Database db(opts);
  SeedTable(db);
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(db.Execute(StrFormat("select v from t where v > %d", i))
                  .status());
  }
  EXPECT_LE(db.plan_cache_stats().entries, 4u);
}

TEST(PreparedStatementTest, CachedPlanSeesIndexCreatedLater) {
  Database db;
  SeedTable(db);
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr select,
                       db.Prepare("select v from t where k = ?"));
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr update,
                       db.Prepare("update t set v = ? where k = ?"));
  ASSERT_OK_AND_ASSIGN(bool sel_probe, select->UsesIndexProbe());
  ASSERT_OK_AND_ASSIGN(bool upd_probe, update->UsesIndexProbe());
  EXPECT_FALSE(sel_probe);
  EXPECT_FALSE(upd_probe);

  ASSERT_OK(db.Execute("create index t_k on t (k)").status());

  // The generation bump invalidates the frozen plans: both handles
  // re-resolve and now probe the new index — with unchanged results.
  ASSERT_OK_AND_ASSIGN(sel_probe, select->UsesIndexProbe());
  ASSERT_OK_AND_ASSIGN(upd_probe, update->UsesIndexProbe());
  EXPECT_TRUE(sel_probe);
  EXPECT_TRUE(upd_probe);
  ASSERT_OK(update->Execute({Value::Double(42.0), Value::Str("b")}).status());
  ASSERT_OK_AND_ASSIGN(ResultSet rs, select->Execute({Value::Str("b")}));
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 42.0);
}

TEST(PreparedStatementTest, DropTableFailsCleanlyAndRecreateRecovers) {
  Database db;
  SeedTable(db);
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr update,
                       db.Prepare("update t set v = ? where k = ?"));
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr select,
                       db.Prepare("select v from t where k = ?"));
  ASSERT_OK(update->Execute({Value::Double(5.0), Value::Str("a")}).status());

  ASSERT_OK(db.Execute("drop table t").status());
  auto u = update->Execute({Value::Double(6.0), Value::Str("a")});
  EXPECT_FALSE(u.ok());
  EXPECT_EQ(u.status().code(), StatusCode::kNotFound) << u.status().ToString();
  auto s = select->Execute({Value::Str("a")});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotFound) << s.status().ToString();

  // Recreating the table re-resolves the same cached handles against the
  // new catalog entry.
  SeedTable(db);
  ASSERT_OK(update->Execute({Value::Double(7.0), Value::Str("a")}).status());
  ASSERT_OK_AND_ASSIGN(ResultSet rs, select->Execute({Value::Str("a")}));
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 7.0);
}

TEST(PreparedStatementTest, TextualExecuteStaysCorrectAcrossDdl) {
  Database db;
  SeedTable(db);
  const std::string sql = "select k, v from t where k = 'b'";
  ASSERT_OK_AND_ASSIGN(ResultSet before, db.Execute(sql));
  ASSERT_OK(db.Execute("create index t_k on t (k)").status());
  ASSERT_OK_AND_ASSIGN(ResultSet after, db.Execute(sql));
  ASSERT_EQ(before.num_rows(), after.num_rows());
  EXPECT_EQ(before.rows[0][0].as_string(), after.rows[0][0].as_string());
  EXPECT_DOUBLE_EQ(before.rows[0][1].as_double(),
                   after.rows[0][1].as_double());
}

TEST(PreparedStatementTest, ConcurrentDdlAndCachedExecutionDontRace) {
  // Two-thread repro of the plan-cache DDL race: cached plans hold raw
  // Table* / Index* pointers, and DropTable frees the table immediately.
  // Without the DDL latch making check-generation-and-execute atomic, the
  // reader can execute a frozen plan against freed storage (a
  // use-after-free ASan catches, and a data race TSan catches). With it,
  // every execution either sees the old table, the new table, or a clean
  // NotFound — never freed memory.
  Database db;
  SeedTable(db);
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr select,
                       db.Prepare("select v from t where k = 'a'"));

  std::atomic<bool> stop{false};
  std::atomic<int> ok_reads{0}, clean_misses{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = select->Execute({});
      if (r.ok()) {
        ++ok_reads;
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kNotFound)
            << r.status().ToString();
        ++clean_misses;
      }
      // The textual plan-cache path races the same way.
      auto r2 = db.Execute("select v from t where k = 'a'");
      if (!r2.ok()) {
        EXPECT_EQ(r2.status().code(), StatusCode::kNotFound)
            << r2.status().ToString();
      }
    }
  });

  // Don't start churning until the reader is actually executing, or all
  // 60 DDL cycles can finish before the thread's first iteration and the
  // test races nothing.
  while (ok_reads.load() + clean_misses.load() == 0) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK(db.Execute("drop table t").status());
    ASSERT_OK(db.ExecuteScript(
        "create table t (k string, v double);"
        "insert into t values ('a', 1.0);"));
  }
  stop = true;
  reader.join();
  EXPECT_GT(ok_reads.load() + clean_misses.load(), 0);

  // The dust settles: cached handles re-resolve against the final table.
  ASSERT_OK_AND_ASSIGN(ResultSet rs, select->Execute({}));
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 1.0);
}

TEST(PreparedStatementTest, PlanNotesDescribeFastPath) {
  Database db;
  SeedTable(db);
  ASSERT_OK(db.Execute("create index t_k on t (k)").status());
  ASSERT_OK_AND_ASSIGN(PreparedStatementPtr update,
                       db.Prepare("update t set v = ? where k = ?"));
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> notes, update->PlanNotes());
  ASSERT_FALSE(notes.empty());
  EXPECT_NE(notes[0].find("index probe"), std::string::npos) << notes[0];
}

// ---------------------------------------------------------------------------
// Compiled vs. interpreted equivalence
// ---------------------------------------------------------------------------

/// Two databases populated identically (reusing the PTA generators), one
/// with compiled expressions + fast paths, one forced fully interpreted.
class EquivalenceSweep : public ::testing::Test {
 protected:
  EquivalenceSweep() {
    Database::Options compiled;
    compiled.enable_compiled_exprs = true;
    Database::Options interpreted;
    interpreted.enable_compiled_exprs = false;
    compiled_ = std::make_unique<Database>(compiled);
    interpreted_ = std::make_unique<Database>(interpreted);
  }

  void Populate() {
    TraceOptions t;
    t.num_stocks = 40;
    t.duration_seconds = 5;
    t.target_updates = 120;
    t.seed = 1234;
    trace_ = MarketTrace::Generate(t);
    PtaConfig cfg;
    cfg.num_composites = 6;
    cfg.stocks_per_composite = 10;
    cfg.num_options = 60;
    cfg.seed = 5678;
    ASSERT_OK(PopulatePtaTables(*compiled_, trace_, cfg));
    ASSERT_OK(PopulatePtaTables(*interpreted_, trace_, cfg));
  }

  /// Runs `sql` on both engines; both must agree on status and, when OK,
  /// on every row (order included — queries in the sweep are ordered).
  void ExpectSameResult(const std::string& sql) {
    auto a = compiled_->Execute(sql);
    auto b = interpreted_->Execute(sql);
    ASSERT_EQ(a.ok(), b.ok())
        << sql << "\ncompiled: " << a.status().ToString()
        << "\ninterpreted: " << b.status().ToString();
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code()) << sql;
      return;
    }
    ASSERT_EQ(a->num_rows(), b->num_rows()) << sql;
    for (size_t r = 0; r < a->num_rows(); ++r) {
      ASSERT_EQ(a->rows[r].size(), b->rows[r].size()) << sql;
      for (size_t c = 0; c < a->rows[r].size(); ++c) {
        EXPECT_EQ(a->rows[r][c].ToString(), b->rows[r][c].ToString())
            << sql << " row " << r << " col " << c;
      }
    }
  }

  MarketTrace trace_;
  std::unique_ptr<Database> compiled_;
  std::unique_ptr<Database> interpreted_;
};

TEST_F(EquivalenceSweep, QueriesAndDmlAgree) {
  Populate();

  // Apply the trace's updates through the prepared path on the compiled
  // engine and through the same handle API on the interpreted one (where
  // every execution falls back to the interpreter).
  ASSERT_OK_AND_ASSIGN(
      PreparedStatementPtr upd_c,
      compiled_->Prepare("update stocks set price = ? where symbol = ?"));
  ASSERT_OK_AND_ASSIGN(
      PreparedStatementPtr upd_i,
      interpreted_->Prepare("update stocks set price = ? where symbol = ?"));
  for (const Quote& q : trace_.quotes()) {
    std::vector<Value> params = {Value::Double(q.price),
                                 Value::Str(StockSymbol(q.stock))};
    ASSERT_OK_AND_ASSIGN(ResultSet rc, upd_c->Execute(params));
    ASSERT_OK_AND_ASSIGN(ResultSet ri, upd_i->Execute(params));
    EXPECT_EQ(rc.rows[0][0].as_int(), ri.rows[0][0].as_int());
  }

  const char* queries[] = {
      "select symbol, price from stocks order by symbol",
      "select comp, price from comp_prices order by comp",
      // Join + aggregate + scalar arithmetic (the Figure-5 recompute).
      "select comp, sum(stocks.price * weight) as price "
      "from stocks, comps_list where stocks.symbol = comps_list.symbol "
      "group by comp order by comp",
      // Scalar function (f_bs) over a three-way join.
      "select option_symbol, "
      "f_bs(stocks.price, strike, expiration, stdev) as price "
      "from stocks, stock_stdev, options_list "
      "where stocks.symbol = options_list.stock_symbol "
      "and stocks.symbol = stock_stdev.symbol "
      "order by option_symbol limit 50",
      // Short-circuit evaluation: the second conjunct would divide by a
      // column value of zero only when reached.
      "select symbol from stocks where price > 1e12 and 1.0 / price > 0 "
      "order by symbol",
      // Unary minus, boolean ops, DISTINCT, HAVING.
      "select distinct comp from comps_list "
      "where not (weight < 0) or -weight > 0 order by comp",
      "select comp, count(*) as n from comps_list group by comp "
      "having count(*) > 2 order by comp",
      // Parameter-free arithmetic edge: integer vs double division.
      "select symbol, price / 4 from stocks order by symbol limit 10",
  };
  for (const char* q : queries) ExpectSameResult(q);

  // Error equivalence: division by zero surfaces identically.
  ExpectSameResult("select 1 / 0 from stocks");
  // Unknown column behind a never-true branch stays a lazy error in both.
  ExpectSameResult("select symbol from stocks where price > 1e12");
}

TEST_F(EquivalenceSweep, PreparedSelectMatchesInterpreted) {
  Populate();
  ASSERT_OK_AND_ASSIGN(
      PreparedStatementPtr sel_c,
      compiled_->Prepare(
          "select comp, weight from comps_list where symbol = ?"));
  ASSERT_OK_AND_ASSIGN(
      PreparedStatementPtr sel_i,
      interpreted_->Prepare(
          "select comp, weight from comps_list where symbol = ?"));
  for (int i = 0; i < 40; ++i) {
    std::vector<Value> params = {Value::Str(StockSymbol(i))};
    ASSERT_OK_AND_ASSIGN(ResultSet a, sel_c->Execute(params));
    ASSERT_OK_AND_ASSIGN(ResultSet b, sel_i->Execute(params));
    ASSERT_EQ(a.num_rows(), b.num_rows()) << StockSymbol(i);
  }
}

}  // namespace
}  // namespace strip
