// End-to-end SQL smoke tests through the Database facade.

#include <gtest/gtest.h>

#include "strip/engine/database.h"

namespace strip {
namespace {

#define ASSERT_OK(expr)                              \
  do {                                               \
    auto _st = (expr);                               \
    ASSERT_TRUE(_st.ok()) << _st.ToString();         \
  } while (0)

class SqlBasicTest : public ::testing::Test {
 protected:
  Database db_;

  ResultSet MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.take() : ResultSet{};
  }
};

TEST_F(SqlBasicTest, CreateInsertSelect) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (a int, b double, c string);
    insert into t values (1, 1.5, 'x'), (2, 2.5, 'y'), (3, 3.5, 'z');
  )"));
  ResultSet rs = MustQuery("select a, b, c from t order by a");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  EXPECT_EQ(rs.rows[2][2], Value::Str("z"));
}

TEST_F(SqlBasicTest, SelectStar) {
  ASSERT_OK(db_.ExecuteScript(
      "create table t (a int, b string); insert into t values (7, 'q')"));
  ResultSet rs = MustQuery("select * from t");
  ASSERT_EQ(rs.num_rows(), 1u);
  ASSERT_EQ(rs.schema.num_columns(), 2);
  EXPECT_EQ(rs.schema.column(0).name, "a");
  EXPECT_EQ(rs.rows[0][1], Value::Str("q"));
}

TEST_F(SqlBasicTest, WhereFilter) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (a int, b int);
    insert into t values (1, 10), (2, 20), (3, 30), (4, 40);
  )"));
  ResultSet rs = MustQuery("select a from t where b > 15 and a < 4");
  EXPECT_EQ(rs.num_rows(), 2u);
  rs = MustQuery("select a from t where b = 20 or b = 40 order by a desc");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(4));
}

TEST_F(SqlBasicTest, JoinTwoTables) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table l (k string, v int);
    create table r (k string, w int);
    insert into l values ('a', 1), ('b', 2), ('c', 3);
    insert into r values ('a', 10), ('b', 20), ('d', 40);
  )"));
  ResultSet rs = MustQuery(
      "select l.k, v, w from l, r where l.k = r.k order by l.k");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("a"));
  EXPECT_EQ(rs.rows[0][2], Value::Int(10));
  EXPECT_EQ(rs.rows[1][1], Value::Int(2));
}

TEST_F(SqlBasicTest, GroupByAggregates) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0), ('a', 2.0), ('b', 5.0), ('b', 7.0),
                         ('b', 9.0);
  )"));
  ResultSet rs = MustQuery(
      "select g, sum(v) as s, count(*) as n, avg(v) as m, min(v) as lo, "
      "max(v) as hi from t group by g order by g");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_double(), 3.0);
  EXPECT_EQ(rs.rows[0][2], Value::Int(2));
  EXPECT_DOUBLE_EQ(rs.rows[1][3].as_double(), 7.0);
  EXPECT_DOUBLE_EQ(rs.rows[1][4].as_double(), 5.0);
  EXPECT_DOUBLE_EQ(rs.rows[1][5].as_double(), 9.0);
}

TEST_F(SqlBasicTest, GlobalAggregateOnEmptyTable) {
  ASSERT_OK(db_.ExecuteScript("create table t (v int)"));
  ResultSet rs = MustQuery("select count(*) as n, sum(v) as s from t");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(0));
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(SqlBasicTest, UpdateWithCompoundAssign) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (k string, v double);
    insert into t values ('a', 10.0), ('b', 20.0);
  )"));
  ResultSet rs = MustQuery("update t set v += 5.0 where k = 'a'");
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  rs = MustQuery("select v from t where k = 'a'");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 15.0);
}

TEST_F(SqlBasicTest, DeleteRows) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (v int);
    insert into t values (1), (2), (3), (4);
  )"));
  MustQuery("delete from t where v > 2");
  ResultSet rs = MustQuery("select count(*) as n from t");
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
}

TEST_F(SqlBasicTest, IndexedLookupMatchesScan) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (k string, v int);
    insert into t values ('a', 1), ('b', 2), ('a', 3);
    create index on t (k);
  )"));
  ResultSet rs = MustQuery("select v from t where k = 'a' order by v");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  EXPECT_EQ(rs.rows[1][0], Value::Int(3));
}

TEST_F(SqlBasicTest, ScalarFunctions) {
  ASSERT_OK(db_.ExecuteScript(
      "create table t (v double); insert into t values (4.0)"));
  ResultSet rs = MustQuery(
      "select sqrt(v) as a, abs(-2) as b, normcdf(0.0) as c from t");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_double(), 2.0);
  EXPECT_EQ(rs.rows[0][1], Value::Int(2));
  EXPECT_DOUBLE_EQ(rs.rows[0][2].as_double(), 0.5);
}

TEST_F(SqlBasicTest, MaterializedView) {
  ASSERT_OK(db_.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0), ('a', 2.0), ('b', 3.0);
    create materialized view mv as
      select g, sum(v) as total from t group by g;
  )"));
  ResultSet rs = MustQuery("select g, total from mv order by g");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_double(), 3.0);
  EXPECT_DOUBLE_EQ(rs.rows[1][1].as_double(), 3.0);
}

TEST_F(SqlBasicTest, ErrorsAreStatuses) {
  EXPECT_EQ(db_.Execute("select * from nonexistent").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("selecty nonsense").status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_OK(db_.ExecuteScript("create table t (a int)"));
  EXPECT_EQ(db_.Execute("create table t (b int)").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db_.Execute("select nosuchcol from t").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace strip
