// Wire v2 frame envelope (feed/framing.h): the checksummed framing the
// network front-end speaks. Decoding is incremental and hostile-input
// hardened: any truncation is kNeedMore, any corruption is kCorrupt with
// the offset untouched, and a hostile length field must be rejected
// before anything is allocated.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "strip/feed/framing.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Frame SampleFrame(uint64_t seq = 42) {
  Frame f;
  f.type = FrameType::kExec;
  f.flags = 3;
  f.seq = seq;
  f.payload = "hello framed world";
  return f;
}

TEST(FramingTest, RoundTripsOneFrame) {
  Frame f = SampleFrame();
  std::string bytes = EncodeFrame(f);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + f.payload.size());

  size_t offset = 0;
  Frame out;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes, &offset, &out, &error), FrameDecode::kFrame)
      << error;
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(out.type, f.type);
  EXPECT_EQ(out.flags, f.flags);
  EXPECT_EQ(out.seq, f.seq);
  EXPECT_EQ(out.payload, f.payload);
}

TEST(FramingTest, EmptyPayloadRoundTrips) {
  Frame f;
  f.type = FrameType::kPing;
  f.seq = 1;
  std::string bytes = EncodeFrame(f);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize);
  size_t offset = 0;
  Frame out;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes, &offset, &out, &error), FrameDecode::kFrame);
  EXPECT_TRUE(out.payload.empty());
}

TEST(FramingTest, DecodesConsecutiveFramesAdvancingOffset) {
  std::string stream;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    Frame f = SampleFrame(seq);
    f.payload = "payload-" + std::to_string(seq);
    ASSERT_OK(AppendFrame(f, &stream));
  }
  size_t offset = 0;
  Frame out;
  std::string error;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_EQ(TryDecodeFrame(stream, &offset, &out, &error),
              FrameDecode::kFrame)
        << error;
    EXPECT_EQ(out.seq, seq);
    EXPECT_EQ(out.payload, "payload-" + std::to_string(seq));
  }
  EXPECT_EQ(offset, stream.size());
  EXPECT_EQ(TryDecodeFrame(stream, &offset, &out, &error),
            FrameDecode::kNeedMore);
}

// Satellite: the torn-stream sweep at the frame layer. A multi-frame
// stream truncated at EVERY byte offset must decode the complete prefix
// frames and report kNeedMore for the torn one — never kCorrupt, never a
// crash, never an offset past the truncation point.
TEST(FramingTest, TruncationAtEveryByteIsNeedMoreNeverCorrupt) {
  std::string stream;
  std::vector<size_t> boundaries = {0};  // offsets where a frame ends
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    Frame f = SampleFrame(seq);
    f.payload.assign(7 * seq, static_cast<char>('a' + seq));
    ASSERT_OK(AppendFrame(f, &stream));
    boundaries.push_back(stream.size());
  }

  for (size_t cut = 0; cut < stream.size(); ++cut) {
    std::string_view torn(stream.data(), cut);
    size_t offset = 0;
    Frame out;
    std::string error;
    // Drain every whole frame in the torn prefix.
    size_t whole = 0;
    FrameDecode d;
    while ((d = TryDecodeFrame(torn, &offset, &out, &error)) ==
           FrameDecode::kFrame) {
      ++whole;
    }
    EXPECT_EQ(d, FrameDecode::kNeedMore) << "cut at " << cut << ": " << error;
    // The decoded frames are exactly those fully inside the cut.
    size_t expect_whole = 0;
    while (expect_whole + 1 < boundaries.size() &&
           boundaries[expect_whole + 1] <= cut) {
      ++expect_whole;
    }
    EXPECT_EQ(whole, expect_whole) << "cut at " << cut;
    EXPECT_EQ(offset, boundaries[whole]) << "cut at " << cut;
  }
}

// Satellite: a CRC mismatch at any payload byte is kCorrupt — a frame
// whose checksum fails never reaches the protocol layer.
TEST(FramingTest, CrcMismatchAtEveryPayloadByteIsCorrupt) {
  Frame f = SampleFrame();
  std::string good = EncodeFrame(f);
  for (size_t i = kFrameHeaderSize; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    size_t offset = 0;
    Frame out;
    std::string error;
    EXPECT_EQ(TryDecodeFrame(bad, &offset, &out, &error),
              FrameDecode::kCorrupt)
        << "payload byte " << i << " flip went undetected";
    EXPECT_EQ(offset, 0u) << "offset advanced on corrupt frame";
    EXPECT_FALSE(error.empty());
  }
}

TEST(FramingTest, BadMagicVersionAndTypeAreCorrupt) {
  std::string good = EncodeFrame(SampleFrame());
  size_t offset = 0;
  Frame out;
  std::string error;

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(TryDecodeFrame(bad_magic, &offset, &out, &error),
            FrameDecode::kCorrupt);
  EXPECT_EQ(offset, 0u);

  std::string bad_version = good;
  bad_version[1] = static_cast<char>(kFrameVersion + 1);
  EXPECT_EQ(TryDecodeFrame(bad_version, &offset, &out, &error),
            FrameDecode::kCorrupt);

  std::string bad_type = good;
  bad_type[2] = static_cast<char>(kMaxFrameType + 1);
  EXPECT_EQ(TryDecodeFrame(bad_type, &offset, &out, &error),
            FrameDecode::kCorrupt);

  std::string zero_type = good;
  zero_type[2] = 0;
  EXPECT_EQ(TryDecodeFrame(zero_type, &offset, &out, &error),
            FrameDecode::kCorrupt);
}

// The hostile-length defense: a header advertising a multi-gigabyte
// payload is rejected from the 20 header bytes alone — kCorrupt, not an
// allocation and not kNeedMore (which would make the server buffer
// forever toward a length that never arrives).
TEST(FramingTest, HostileLengthRejectedFromHeaderAlone) {
  std::string header = EncodeFrame(SampleFrame());
  header.resize(kFrameHeaderSize);
  for (uint32_t evil : {kMaxFramePayload + 1, 0x40000000u, 0xFFFFFFFFu}) {
    std::string bad = header;
    std::memcpy(&bad[12], &evil, sizeof(evil));  // payload_len field
    size_t offset = 0;
    Frame out;
    std::string error;
    EXPECT_EQ(TryDecodeFrame(bad, &offset, &out, &error),
              FrameDecode::kCorrupt)
        << "length " << evil << " accepted";
    EXPECT_EQ(offset, 0u);
  }
}

TEST(FramingTest, MaxPayloadBoundaryIsExact) {
  // kMaxFramePayload itself encodes and decodes; one past fails to encode.
  Frame f;
  f.type = FrameType::kRows;
  f.seq = 9;
  f.payload.assign(kMaxFramePayload, 'x');
  std::string bytes;
  ASSERT_OK(AppendFrame(f, &bytes));
  size_t offset = 0;
  Frame out;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(bytes, &offset, &out, &error), FrameDecode::kFrame)
      << error;

  f.payload.push_back('x');
  std::string rejected;
  EXPECT_FALSE(AppendFrame(f, &rejected).ok());
  EXPECT_TRUE(rejected.empty()) << "failed encode left partial bytes";
}

TEST(FramingTest, CorruptionAfterValidFrameNamesSecondFrame) {
  // First frame decodes; garbage after it is detected at the new offset.
  std::string stream = EncodeFrame(SampleFrame(1));
  size_t first_end = stream.size();
  stream += EncodeFrame(SampleFrame(2));
  stream[first_end] = 'Z';  // destroy the second frame's magic

  size_t offset = 0;
  Frame out;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(stream, &offset, &out, &error), FrameDecode::kFrame);
  EXPECT_EQ(out.seq, 1u);
  EXPECT_EQ(TryDecodeFrame(stream, &offset, &out, &error),
            FrameDecode::kCorrupt);
  EXPECT_EQ(offset, first_end) << "offset moved past the corrupt frame";
}

TEST(FramingTest, FrameTypeNamesCoverProtocol) {
  EXPECT_STREQ(FrameTypeName(FrameType::kHello), "hello");
  EXPECT_STREQ(FrameTypeName(FrameType::kError), "error");
}

}  // namespace
}  // namespace strip
