// Unit tests for the §6.1 temporary-table machinery: the pointer-based
// tuple layout, version retention via RecordRefs, bound-table merging.

#include <gtest/gtest.h>

#include "strip/storage/bound_table_set.h"
#include "strip/storage/table.h"
#include "strip/storage/temp_table.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Schema BaseSchema() {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  s.AddColumn("v", ValueType::kDouble);
  return s;
}

/// A temp table like a transition table: base columns pointer-backed
/// through slot 0 plus one materialized column.
TempTable PointerBacked(const std::string& name) {
  Schema s = BaseSchema();
  s.AddColumn("seq", ValueType::kInt);
  std::vector<TempColumnMap> map = {
      {0, 0}, {0, 1}, {TempColumnMap::kMaterializedSlot, 0}};
  return TempTable(name, std::move(s), std::move(map), 1, 1);
}

TEST(TempTableTest, PointerColumnsReadThroughRecords) {
  TempTable t = PointerBacked("t");
  RecordRef rec = MakeRecord({Value::Str("a"), Value::Double(1.5)});
  t.Append(TempTuple{{rec}, {Value::Int(7)}});
  EXPECT_EQ(t.Get(0, 0), Value::Str("a"));
  EXPECT_DOUBLE_EQ(t.Get(0, 1).as_double(), 1.5);
  EXPECT_EQ(t.Get(0, 2), Value::Int(7));
}

TEST(TempTableTest, MaterializedFactoryLayout) {
  TempTable t = TempTable::Materialized("m", BaseSchema());
  EXPECT_EQ(t.num_slots(), 0);
  EXPECT_EQ(t.num_extra(), 2);
  t.Append(TempTuple{{}, {Value::Str("x"), Value::Double(2)}});
  EXPECT_EQ(t.Get(0, 0), Value::Str("x"));
}

TEST(TempTableTest, RecordsSurviveTableUpdateAndErase) {
  // The central §6.1 guarantee: standard records are never changed in
  // place, so bound tables see the database state at bind time even after
  // the base row is updated or deleted.
  Table base("base", BaseSchema());
  ASSERT_OK_AND_ASSIGN(
      RowHandle row, base.Insert(MakeRecord({Value::Str("a"), Value::Double(1)})));

  TempTable bound = PointerBacked("bound");
  bound.Append(TempTuple{{row->rec}, {Value::Int(1)}});

  ASSERT_OK(base.Update(row, MakeRecord({Value::Str("a"), Value::Double(99)})));
  EXPECT_DOUBLE_EQ(bound.Get(0, 1).as_double(), 1.0);  // still the old image

  base.Erase(row);
  EXPECT_DOUBLE_EQ(bound.Get(0, 1).as_double(), 1.0);  // still alive
}

TEST(TempTableTest, MaterializeRowCopiesValues) {
  TempTable t = PointerBacked("t");
  t.Append(TempTuple{{MakeRecord({Value::Str("z"), Value::Double(4)})},
                     {Value::Int(2)}});
  std::vector<Value> row = t.MaterializeRow(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], Value::Str("z"));
  EXPECT_EQ(row[2], Value::Int(2));
}

TEST(TempTableTest, MaterializeWholeTable) {
  TempTable t = PointerBacked("t");
  t.Append(TempTuple{{MakeRecord({Value::Str("a"), Value::Double(1)})},
                     {Value::Int(1)}});
  t.Append(TempTuple{{MakeRecord({Value::Str("b"), Value::Double(2)})},
                     {Value::Int(2)}});
  ResultSet rs = t.Materialize();
  EXPECT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[1][0], Value::Str("b"));
  EXPECT_NE(rs.ToString().find("a\t1\t1"), std::string::npos);
}

TEST(TempTableTest, AppendFromMovesTuples) {
  TempTable a = PointerBacked("x");
  TempTable b = PointerBacked("x");
  a.Append(TempTuple{{MakeRecord({Value::Str("a"), Value::Double(1)})},
                     {Value::Int(1)}});
  b.Append(TempTuple{{MakeRecord({Value::Str("b"), Value::Double(2)})},
                     {Value::Int(2)}});
  b.Append(TempTuple{{MakeRecord({Value::Str("c"), Value::Double(3)})},
                     {Value::Int(3)}});
  ASSERT_OK(a.AppendFrom(std::move(b)));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Get(2, 0), Value::Str("c"));
}

TEST(TempTableTest, AppendFromRejectsSchemaMismatch) {
  TempTable a = PointerBacked("x");
  TempTable b = TempTable::Materialized("x", BaseSchema());
  EXPECT_EQ(a.AppendFrom(std::move(b)).code(), StatusCode::kInternal);
}

TEST(TempTableTest, CloneSharesRecordsButNotTuples) {
  TempTable a = PointerBacked("x");
  RecordRef rec = MakeRecord({Value::Str("a"), Value::Double(1)});
  a.Append(TempTuple{{rec}, {Value::Int(1)}});
  TempTable c = a.Clone();
  EXPECT_EQ(c.size(), 1u);
  // Pointer columns share the same record object (cheap clone).
  EXPECT_EQ(c.tuples()[0].slots[0].get(), rec.get());
  // But appending to the clone does not affect the original.
  c.Append(TempTuple{{rec}, {Value::Int(2)}});
  EXPECT_EQ(a.size(), 1u);
}

TEST(BoundTableSetTest, AddAndFindByName) {
  BoundTableSet set;
  ASSERT_OK(set.Add(PointerBacked("matches")));
  EXPECT_NE(set.Find("MATCHES"), nullptr);
  EXPECT_EQ(set.Find("other"), nullptr);
  EXPECT_EQ(set.Add(PointerBacked("matches")).code(),
            StatusCode::kAlreadyExists);
}

TEST(BoundTableSetTest, MergeAppendsSameNamedTables) {
  BoundTableSet a, b;
  TempTable ta = PointerBacked("matches");
  ta.Append(TempTuple{{MakeRecord({Value::Str("a"), Value::Double(1)})},
                      {Value::Int(1)}});
  ASSERT_OK(a.Add(std::move(ta)));
  TempTable tb = PointerBacked("matches");
  tb.Append(TempTuple{{MakeRecord({Value::Str("b"), Value::Double(2)})},
                      {Value::Int(2)}});
  ASSERT_OK(b.Add(std::move(tb)));

  ASSERT_OK(a.MergeFrom(std::move(b)));
  EXPECT_EQ(a.Find("matches")->size(), 2u);
  EXPECT_EQ(a.TotalTuples(), 2u);
}

TEST(BoundTableSetTest, MergeRejectsDifferentShapes) {
  BoundTableSet a, b;
  ASSERT_OK(a.Add(PointerBacked("x")));
  ASSERT_OK(b.Add(PointerBacked("y")));
  EXPECT_EQ(a.MergeFrom(std::move(b)).code(), StatusCode::kInternal);

  BoundTableSet c, d;
  ASSERT_OK(c.Add(PointerBacked("x")));
  EXPECT_EQ(c.MergeFrom(std::move(d)).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace strip
