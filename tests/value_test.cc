// Unit tests for the Value type: construction, comparison with numeric
// coercion, hashing consistency, truthiness, composite-key helpers.

#include <gtest/gtest.h>

#include "strip/storage/value.h"

namespace strip {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_FALSE(v.is_numeric());
}

TEST(ValueTest, Constructors) {
  EXPECT_EQ(Value::Int(7).type(), ValueType::kInt);
  EXPECT_EQ(Value::Int(7).as_int(), 7);
  EXPECT_EQ(Value::Double(2.5).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::Str("hi").type(), ValueType::kString);
  EXPECT_EQ(Value::Str("hi").as_string(), "hi");
  EXPECT_EQ(Value::Bool(true), Value::Int(1));
  EXPECT_EQ(Value::Bool(false), Value::Int(0));
}

TEST(ValueTest, IntCoercesToDouble) {
  EXPECT_DOUBLE_EQ(Value::Int(3).as_double(), 3.0);
}

TEST(ValueTest, CompareNumericCoercion) {
  EXPECT_EQ(Value::Compare(Value::Int(3), Value::Double(3.0)), 0);
  EXPECT_LT(Value::Compare(Value::Int(2), Value::Double(2.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(2.5), Value::Int(2)), 0);
  EXPECT_TRUE(Value::Int(3) == Value::Double(3.0));
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::Compare(Value::Str("a"), Value::Str("b")), 0);
  EXPECT_EQ(Value::Compare(Value::Str("x"), Value::Str("x")), 0);
  EXPECT_GT(Value::Compare(Value::Str("b"), Value::Str("a")), 0);
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int(-100)), 0);
  EXPECT_LT(Value::Compare(Value::Null(), Value::Str("")), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, MixedTypesHaveStableOrder) {
  // Numbers and strings are incomparable semantically; ordering is by type
  // tag so sorting mixed columns is deterministic.
  int c1 = Value::Compare(Value::Int(5), Value::Str("5"));
  int c2 = Value::Compare(Value::Str("5"), Value::Int(5));
  EXPECT_EQ(c1, -c2);
  EXPECT_NE(c1, 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  // Int(3) == Double(3.0), so they must hash alike.
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value::Null().IsTruthy());
  EXPECT_FALSE(Value::Int(0).IsTruthy());
  EXPECT_TRUE(Value::Int(-1).IsTruthy());
  EXPECT_FALSE(Value::Double(0.0).IsTruthy());
  EXPECT_TRUE(Value::Double(0.1).IsTruthy());
  EXPECT_FALSE(Value::Str("").IsTruthy());
  EXPECT_TRUE(Value::Str("x").IsTruthy());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Double(3.5).ToString(), "3.5");
  EXPECT_EQ(Value::Str("hey").ToString(), "hey");
}

TEST(ValueVectorTest, HashAndEquality) {
  ValueVectorHash h;
  ValueVectorEq eq;
  std::vector<Value> a = {Value::Int(1), Value::Str("x")};
  std::vector<Value> b = {Value::Int(1), Value::Str("x")};
  std::vector<Value> c = {Value::Int(2), Value::Str("x")};
  EXPECT_TRUE(eq(a, b));
  EXPECT_FALSE(eq(a, c));
  EXPECT_FALSE(eq(a, {Value::Int(1)}));
  EXPECT_EQ(h(a), h(b));
  EXPECT_TRUE(eq({}, {}));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt), "int");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace strip
