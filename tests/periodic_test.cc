// Periodic recomputation tests (§3 notes STRIP supports it; the paper's
// example is the off-hours refresh of stock_stdev).

#include <gtest/gtest.h>

#include "strip/engine/database.h"
#include "strip/viewmaint/view_def.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Database::Options LogicalTime() {
  Database::Options o;
  o.mode = ExecutorMode::kSimulated;
  o.advance_clock_by_cost = false;
  return o;
}

TEST(PeriodicTest, RunsOncePerPeriod) {
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript("create table ticks (at int)"));
  ASSERT_OK(db.RegisterFunction("tick", [&db](FunctionContext& ctx) {
    return ctx.Exec("insert into ticks values (" +
                    std::to_string(db.Now()) + ")")
        .status();
  }));
  ASSERT_OK(db.SchedulePeriodic("job", 1.0, "tick"));
  db.simulated()->RunUntil(SecondsToMicros(5.5));
  ASSERT_OK(db.CancelPeriodic("job"));
  db.simulated()->RunUntilQuiescent();

  auto rs = db.Execute("select at from ticks order by at");
  ASSERT_OK(rs.status());
  ASSERT_EQ(rs->num_rows(), 5u);  // t = 1s..5s
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rs->rows[i][0].as_int(),
              SecondsToMicros(static_cast<double>(i + 1)));
  }
}

TEST(PeriodicTest, CancelStopsFutureTicks) {
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript("create table ticks (at int)"));
  ASSERT_OK(db.RegisterFunction("tick", [&db](FunctionContext& ctx) {
    return ctx.Exec("insert into ticks values (1)").status();
  }));
  ASSERT_OK(db.SchedulePeriodic("job", 1.0, "tick"));
  db.simulated()->RunUntil(SecondsToMicros(2.5));  // 2 ticks
  ASSERT_OK(db.CancelPeriodic("job"));
  db.simulated()->RunUntil(SecondsToMicros(10.0));
  auto rs = db.Execute("select count(*) as n from ticks");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(2));
}

TEST(PeriodicTest, ValidationErrors) {
  Database db(LogicalTime());
  ASSERT_OK(db.RegisterFunction("f", [](FunctionContext&) {
    return Status::OK();
  }));
  EXPECT_EQ(db.SchedulePeriodic("j", 0.0, "f").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.SchedulePeriodic("j", 1.0, "nosuch").code(),
            StatusCode::kNotFound);
  ASSERT_OK(db.SchedulePeriodic("j", 1.0, "f"));
  EXPECT_EQ(db.SchedulePeriodic("j", 1.0, "f").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.CancelPeriodic("other").code(), StatusCode::kNotFound);
  ASSERT_OK(db.CancelPeriodic("j"));
}

TEST(PeriodicTest, PeriodicViewRefreshKeepsViewFresh) {
  // The paper's use case: periodically recompute derived data that is not
  // maintained by rules (stock_stdev, §3) — here a materialized view
  // refreshed every 2 s.
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript(R"(
    create table t (g string, v double);
    insert into t values ('a', 1.0);
    create materialized view mv as
      select g, sum(v) as total from t group by g;
  )"));
  ASSERT_OK(db.RegisterFunction("refresh_mv", [&db](FunctionContext&) {
    return db.views().RefreshView("mv");
  }));
  ASSERT_OK(db.SchedulePeriodic("refresh", 2.0, "refresh_mv"));

  ASSERT_OK(db.Execute("insert into t values ('a', 9.0)").status());
  db.simulated()->RunUntil(SecondsToMicros(1.0));
  auto rs = db.Execute("select total from mv");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 1.0);  // not yet refreshed
  db.simulated()->RunUntil(SecondsToMicros(2.5));
  rs = db.Execute("select total from mv");
  ASSERT_OK(rs.status());
  EXPECT_DOUBLE_EQ(rs->rows[0][0].as_double(), 10.0);  // refreshed at t=2
  ASSERT_OK(db.CancelPeriodic("refresh"));
}

TEST(PeriodicTest, FailedTickDoesNotKillTheJob) {
  Database db(LogicalTime());
  ASSERT_OK(db.ExecuteScript("create table ticks (at int)"));
  int calls = 0;
  ASSERT_OK(db.RegisterFunction("flaky", [&](FunctionContext& ctx) -> Status {
    ++calls;
    if (calls == 1) return Status::Internal("transient failure");
    return ctx.Exec("insert into ticks values (1)").status();
  }));
  ASSERT_OK(db.SchedulePeriodic("j", 1.0, "flaky"));
  db.simulated()->RunUntil(SecondsToMicros(3.5));
  ASSERT_OK(db.CancelPeriodic("j"));
  EXPECT_EQ(calls, 3);
  auto rs = db.Execute("select count(*) as n from ticks");
  ASSERT_OK(rs.status());
  EXPECT_EQ(rs->rows[0][0], Value::Int(2));  // ticks 2 and 3 succeeded
}

}  // namespace
}  // namespace strip
