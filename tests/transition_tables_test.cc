// Transition-table construction tests (§2, §6.3): the four tables, shared
// execute_order for update pairs, pointer-backed layout, version pinning.

#include <gtest/gtest.h>

#include "strip/rules/transition_tables.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", ValueType::kString);
  s.AddColumn("v", ValueType::kInt);
  return s;
}

TEST(TransitionTablesTest, SchemaAppendsExecuteOrder) {
  Table t("t", KV());
  Schema s = TransitionSchema(t);
  ASSERT_EQ(s.num_columns(), 3);
  EXPECT_EQ(s.column(2).name, "execute_order");
  EXPECT_EQ(s.column(2).type, ValueType::kInt);
}

TEST(TransitionTablesTest, FourTablesFromMixedLog) {
  Table t("t", KV());
  TxnLog log;

  // insert a; update a -> 10; insert b; delete b
  auto a = t.Insert(MakeRecord({Value::Str("a"), Value::Int(1)}));
  log.Append(LogOp::kInsert, &t, (*a)->id, nullptr, (*a)->rec);
  RecordRef old_a = (*a)->rec;
  ASSERT_OK(t.Update(*a, MakeRecord({Value::Str("a"), Value::Int(10)})));
  log.Append(LogOp::kUpdate, &t, (*a)->id, old_a, (*a)->rec);
  auto b = t.Insert(MakeRecord({Value::Str("b"), Value::Int(2)}));
  log.Append(LogOp::kInsert, &t, (*b)->id, nullptr, (*b)->rec);
  log.Append(LogOp::kDelete, &t, (*b)->id, (*b)->rec, nullptr);
  t.Erase(*b);

  BoundTableSet tt = BuildTransitionTables(t, log);
  const TempTable* inserted = tt.Find("inserted");
  const TempTable* deleted = tt.Find("deleted");
  const TempTable* old_t = tt.Find("old");
  const TempTable* new_t = tt.Find("new");
  ASSERT_NE(inserted, nullptr);
  ASSERT_NE(deleted, nullptr);
  ASSERT_NE(old_t, nullptr);
  ASSERT_NE(new_t, nullptr);

  // No net-effect reduction: b shows in inserted AND deleted (§2).
  ASSERT_EQ(inserted->size(), 2u);
  ASSERT_EQ(deleted->size(), 1u);
  EXPECT_EQ(deleted->Get(0, 0), Value::Str("b"));

  // The update's old/new images share their execute_order (2).
  ASSERT_EQ(old_t->size(), 1u);
  ASSERT_EQ(new_t->size(), 1u);
  EXPECT_EQ(old_t->Get(0, 2), Value::Int(2));
  EXPECT_EQ(new_t->Get(0, 2), Value::Int(2));
  EXPECT_EQ(old_t->Get(0, 1), Value::Int(1));
  EXPECT_EQ(new_t->Get(0, 1), Value::Int(10));

  // Sequence: insert a (1), update (2), insert b (3), delete b (4).
  EXPECT_EQ(inserted->Get(0, 2), Value::Int(1));
  EXPECT_EQ(inserted->Get(1, 2), Value::Int(3));
  EXPECT_EQ(deleted->Get(0, 2), Value::Int(4));
}

TEST(TransitionTablesTest, OtherTablesEntriesIgnored) {
  Table t("t", KV());
  Table other("other", KV());
  TxnLog log;
  auto r = other.Insert(MakeRecord({Value::Str("x"), Value::Int(1)}));
  log.Append(LogOp::kInsert, &other, (*r)->id, nullptr, (*r)->rec);
  BoundTableSet tt = BuildTransitionTables(t, log);
  EXPECT_EQ(tt.Find("inserted")->size(), 0u);
  EXPECT_EQ(tt.TotalTuples(), 0u);
}

TEST(TransitionTablesTest, OldImagesSurviveFurtherChanges) {
  // Transition tables pin the record versions they reference; later base
  // changes must not alter what the rule action sees (§6.1).
  Table t("t", KV());
  TxnLog log;
  auto a = t.Insert(MakeRecord({Value::Str("a"), Value::Int(1)}));
  RecordRef old_a = (*a)->rec;
  ASSERT_OK(t.Update(*a, MakeRecord({Value::Str("a"), Value::Int(2)})));
  log.Append(LogOp::kUpdate, &t, (*a)->id, old_a, (*a)->rec);
  BoundTableSet tt = BuildTransitionTables(t, log);

  // Simulate a later transaction changing and then deleting the row.
  ASSERT_OK(t.Update(*a, MakeRecord({Value::Str("a"), Value::Int(99)})));
  t.Erase(t.FindRow(1));

  EXPECT_EQ(tt.Find("old")->Get(0, 1), Value::Int(1));
  EXPECT_EQ(tt.Find("new")->Get(0, 1), Value::Int(2));
}

}  // namespace
}  // namespace strip
