// Unit tests for the common substrate: Status/Result, clocks, RNG,
// spinlock, string utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "strip/common/clock.h"
#include "strip/common/logging.h"
#include "strip/common/rng.h"
#include "strip/common/spin_lock.h"
#include "strip/common/status.h"
#include "strip/common/string_util.h"

namespace strip {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no table 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no table 'x'");
  EXPECT_EQ(s.ToString(), "NotFound: no table 'x'");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r = std::string("hello");
  std::string v = r.take();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("x");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    STRIP_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(outer(false).value(), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kNotFound);
}

TEST(ClockTest, VirtualClockNeverGoesBackwards) {
  VirtualClock c(100);
  EXPECT_EQ(c.Now(), 100);
  c.AdvanceTo(50);
  EXPECT_EQ(c.Now(), 100);
  c.AdvanceTo(200);
  EXPECT_EQ(c.Now(), 200);
  c.Advance(5);
  EXPECT_EQ(c.Now(), 205);
}

TEST(ClockTest, RealClockIsMonotonic) {
  RealClock c;
  Timestamp a = c.Now();
  Timestamp b = c.Now();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(ClockTest, SecondsConversionRoundTrips) {
  EXPECT_EQ(SecondsToMicros(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(2'500'000), 2.5);
  EXPECT_EQ(SecondsToMicros(0.0), 0);
}

TEST(ClockTest, StopWatchMeasuresElapsed) {
  StopWatch w;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GT(w.ElapsedNanos(), 0);
  EXPECT_GE(w.ElapsedMicros(), 0);
  w.Restart();
  EXPECT_LT(w.ElapsedMicros(), 1000000);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, GeometricRespectsMinimum) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Geometric(1, 0.5), 1);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(100, 1.0);
  double total = 0;
  for (int64_t i = 0; i < z.n(); ++i) total += z.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroIsHottest) {
  ZipfDistribution z(1000, 0.8);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(999));
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(z.Pmf(i), 0.1, 1e-9);
  }
}

TEST(ZipfTest, SamplesFollowSkew) {
  ZipfDistribution z(50, 1.0);
  Rng rng(11);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[static_cast<size_t>(z.Sample(rng))];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[49]);
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLockGuard g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(LogRateLimiterTest, FirstCallPassesThenThrottles) {
  LogRateLimiter limiter(/*interval_us=*/60'000'000);  // long: no expiry
  uint64_t suppressed = 123;
  EXPECT_TRUE(limiter.ShouldLog(&suppressed));
  EXPECT_EQ(suppressed, 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(limiter.ShouldLog());
  }
  EXPECT_FALSE(limiter.ShouldLog(&suppressed));  // 12th call overall
}

TEST(LogRateLimiterTest, IntervalExpiryReportsSuppressedCount) {
  LogRateLimiter limiter(/*interval_us=*/1);  // effectively always expired
  uint64_t suppressed = 0;
  EXPECT_TRUE(limiter.ShouldLog(&suppressed));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(limiter.ShouldLog(&suppressed));
  EXPECT_EQ(suppressed, 0u);  // nothing was swallowed in between

  LogRateLimiter slow(/*interval_us=*/50'000);
  EXPECT_TRUE(slow.ShouldLog());
  int swallowed = 0;
  while (!slow.ShouldLog(&suppressed)) {
    ++swallowed;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(swallowed, 0);
  EXPECT_EQ(suppressed, static_cast<uint64_t>(swallowed));
}

TEST(LogRateLimiterTest, ConcurrentCallersEmitExactlyOncePerInterval) {
  LogRateLimiter limiter(/*interval_us=*/60'000'000);
  std::atomic<int> emitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (limiter.ShouldLog()) emitted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(emitted.load(), 1);
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("AbC_1"), "abc_1");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("ab", "ac"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace strip
