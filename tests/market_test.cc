// Market substrate tests: Black-Scholes pricing, the synthetic TAQ-like
// trace generator (the documented substitution for the paper's NYSE TAQ
// file), and the PTA table populator.

#include <gtest/gtest.h>

#include <cmath>

#include "strip/market/black_scholes.h"
#include "strip/market/populate.h"
#include "strip/market/trace.h"
#include "tests/test_util.h"

namespace strip {
namespace {

// ---------------------------------------------------------------------------
// Black-Scholes
// ---------------------------------------------------------------------------

TEST(BlackScholesTest, KnownReferenceValue) {
  // Classic textbook value: S=100, K=100, r=5%, sigma=20%, T=1y -> 10.4506.
  EXPECT_NEAR(BlackScholesCall(100, 100, 0.05, 0.20, 1.0), 10.4506, 1e-3);
  // S=42, K=40, r=10%, sigma=20%, T=0.5 -> 4.7594 (Hull's example).
  EXPECT_NEAR(BlackScholesCall(42, 40, 0.10, 0.20, 0.5), 4.7594, 1e-3);
}

TEST(BlackScholesTest, DegenerateLimits) {
  // At expiry: intrinsic value.
  EXPECT_DOUBLE_EQ(BlackScholesCall(50, 40, 0.05, 0.3, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(BlackScholesCall(30, 40, 0.05, 0.3, 0.0), 0.0);
  // Zero volatility: discounted intrinsic value.
  EXPECT_NEAR(BlackScholesCall(50, 40, 0.05, 0.0, 1.0),
              50 - 40 * std::exp(-0.05), 1e-9);
}

TEST(BlackScholesTest, MonotonicInSpotAndAboveIntrinsic) {
  double prev = 0;
  for (double s = 20; s <= 80; s += 5) {
    double p = BlackScholesCall(s, 50, 0.05, 0.3, 0.5);
    EXPECT_GE(p, std::max(s - 50 * std::exp(-0.05 * 0.5), 0.0) - 1e-9);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, s);  // a call never costs more than the stock
    prev = p;
  }
}

TEST(BlackScholesTest, IncreasesWithVolatilityAndMaturity) {
  EXPECT_LT(BlackScholesCall(50, 50, 0.05, 0.1, 0.5),
            BlackScholesCall(50, 50, 0.05, 0.4, 0.5));
  EXPECT_LT(BlackScholesCall(50, 50, 0.05, 0.2, 0.1),
            BlackScholesCall(50, 50, 0.05, 0.2, 1.0));
}

TEST(NormCdfTest, StandardValues) {
  EXPECT_DOUBLE_EQ(NormCdf(0.0), 0.5);
  EXPECT_NEAR(NormCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormCdf(8), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Trace generator
// ---------------------------------------------------------------------------

TraceOptions SmallTrace() {
  TraceOptions o;
  o.num_stocks = 200;
  o.duration_seconds = 60;
  o.target_updates = 2000;
  o.seed = 3;
  return o;
}

TEST(TraceTest, DeterministicForSeed) {
  MarketTrace a = MarketTrace::Generate(SmallTrace());
  MarketTrace b = MarketTrace::Generate(SmallTrace());
  ASSERT_EQ(a.quotes().size(), b.quotes().size());
  for (size_t i = 0; i < a.quotes().size(); ++i) {
    EXPECT_EQ(a.quotes()[i].stock, b.quotes()[i].stock);
    EXPECT_EQ(a.quotes()[i].time, b.quotes()[i].time);
    EXPECT_DOUBLE_EQ(a.quotes()[i].price, b.quotes()[i].price);
  }
  TraceOptions other = SmallTrace();
  other.seed = 4;
  MarketTrace c = MarketTrace::Generate(other);
  bool identical = c.quotes().size() == a.quotes().size();
  if (identical) {
    identical = false;
    for (size_t i = 0; i < a.quotes().size(); ++i) {
      if (a.quotes()[i].stock != c.quotes()[i].stock) break;
      if (i + 1 == a.quotes().size()) identical = true;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(TraceTest, QuotesStrictlyOrderedWithinWindow) {
  MarketTrace t = MarketTrace::Generate(SmallTrace());
  EXPECT_GE(t.quotes().size(), 2000u);
  for (size_t i = 1; i < t.quotes().size(); ++i) {
    EXPECT_GT(t.quotes()[i].time, t.quotes()[i - 1].time);
  }
  EXPECT_GE(t.quotes().front().time, 0);
}

TEST(TraceTest, PricesPositiveAndOnTickGrid) {
  TraceOptions o = SmallTrace();
  MarketTrace t = MarketTrace::Generate(o);
  for (const Quote& q : t.quotes()) {
    EXPECT_GT(q.price, 0.0);
    double ticks = q.price / o.tick;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-6);
  }
}

TEST(TraceTest, ActivityMatchesQuoteCounts) {
  MarketTrace t = MarketTrace::Generate(SmallTrace());
  std::vector<int64_t> counts(200, 0);
  for (const Quote& q : t.quotes()) ++counts[static_cast<size_t>(q.stock)];
  EXPECT_EQ(counts, t.activity());
  // Expected-activity weights are a probability distribution.
  double total = 0;
  for (double w : t.activity_weights()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(t.activity_weights()[0], t.activity_weights()[199]);
}

TEST(TraceTest, BurstinessTemporalLocality) {
  // The batching gains depend on repeated quotes for the same stock within
  // short windows ([AKGM96a] temporal locality). Check that consecutive
  // same-stock quotes are much closer in time than the average gap.
  MarketTrace t = MarketTrace::Generate(SmallTrace());
  std::vector<Timestamp> last_seen(200, -1);
  double burst_gaps = 0, burst_n = 0;
  for (const Quote& q : t.quotes()) {
    Timestamp prev = last_seen[static_cast<size_t>(q.stock)];
    if (prev >= 0) {
      Timestamp gap = q.time - prev;
      if (gap < SecondsToMicros(2.0)) {
        burst_gaps += static_cast<double>(gap);
        burst_n += 1;
      }
    }
    last_seen[static_cast<size_t>(q.stock)] = q.time;
  }
  // A healthy share of quotes are burst continuations.
  EXPECT_GT(burst_n / static_cast<double>(t.quotes().size()), 0.3);
}

TEST(TraceTest, ScaledPreservesStockUniverse) {
  TraceOptions full;
  TraceOptions tenth = TraceOptions::Scaled(0.1);
  EXPECT_EQ(tenth.num_stocks, full.num_stocks);
  EXPECT_NEAR(tenth.duration_seconds, full.duration_seconds * 0.1, 1e-9);
  EXPECT_EQ(tenth.target_updates, full.target_updates / 10);
}

// ---------------------------------------------------------------------------
// Populator
// ---------------------------------------------------------------------------

TEST(PopulateTest, TableShapesAndProportionalAllocation) {
  TraceOptions to = SmallTrace();
  MarketTrace trace = MarketTrace::Generate(to);
  PtaConfig cfg;
  cfg.num_composites = 10;
  cfg.stocks_per_composite = 30;
  cfg.num_options = 500;
  Database db;
  ASSERT_OK(PopulatePtaTables(db, trace, cfg));

  EXPECT_EQ(db.catalog().FindTable("stocks")->size(), 200u);
  EXPECT_EQ(db.catalog().FindTable("stock_stdev")->size(), 200u);
  EXPECT_EQ(db.catalog().FindTable("comps_list")->size(), 300u);
  EXPECT_EQ(db.catalog().FindTable("comp_prices")->size(), 10u);
  EXPECT_EQ(db.catalog().FindTable("options_list")->size(), 500u);
  EXPECT_EQ(db.catalog().FindTable("option_prices")->size(), 500u);

  // Options are allocated in proportion to trading activity (§4.2): the
  // most active decile of stocks must hold far more options than the least
  // active decile.
  auto rs = db.Execute(
      "select stock_symbol, count(*) as n from options_list "
      "group by stock_symbol");
  ASSERT_OK(rs.status());
  int64_t hot = 0, cold = 0;
  for (const auto& row : rs->rows) {
    int idx = std::stoi(row[0].as_string().substr(1));
    if (idx < 20) hot += row[1].as_int();
    if (idx >= 180) cold += row[1].as_int();
  }
  EXPECT_GT(hot, cold);

  // The materialized views start exactly consistent.
  ASSERT_OK(db.Execute("select comp, sum(stocks.price * weight) as price "
                       "from stocks, comps_list "
                       "where stocks.symbol = comps_list.symbol "
                       "group by comp").status());
}

TEST(PopulateTest, SymbolFormats) {
  EXPECT_EQ(StockSymbol(7), "s0007");
  EXPECT_EQ(CompSymbol(12), "c012");
  EXPECT_EQ(OptionSymbol(123), "o00123");
}

TEST(PopulateTest, FbsRegisteredAndUsable) {
  TraceOptions to = SmallTrace();
  MarketTrace trace = MarketTrace::Generate(to);
  PtaConfig cfg;
  cfg.num_composites = 2;
  cfg.stocks_per_composite = 5;
  cfg.num_options = 10;
  Database db;
  ASSERT_OK(PopulatePtaTables(db, trace, cfg));
  auto rs = db.Execute(
      "select f_bs(100.0, 100.0, 1.0, 0.2) as p from comp_prices "
      "where comp = 'c000'");
  ASSERT_OK(rs.status());
  EXPECT_NEAR(rs->rows[0][0].as_double(), 10.4506, 1e-3);
}

}  // namespace
}  // namespace strip
