// Tests for the extended SQL subset: DISTINCT, HAVING, LIMIT, IN-lists,
// BETWEEN, and their interactions.

#include <gtest/gtest.h>

#include "strip/engine/database.h"
#include "tests/test_util.h"

namespace strip {
namespace {

class SqlExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(db_.ExecuteScript(R"(
      create table t (g string, v int);
      insert into t values
        ('a', 1), ('a', 2), ('b', 3), ('b', 4), ('b', 5), ('c', 6),
        ('a', 1);
    )"));
  }

  ResultSet MustQuery(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? r.take() : ResultSet{};
  }

  Database db_;
};

TEST_F(SqlExtensionsTest, DistinctRemovesDuplicateRows) {
  ResultSet rs = MustQuery("select distinct g from t order by g");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("a"));
  EXPECT_EQ(rs.rows[2][0], Value::Str("c"));
  // Multi-column distinct keeps distinct combinations.
  rs = MustQuery("select distinct g, v from t");
  EXPECT_EQ(rs.num_rows(), 6u);  // ('a',1) duplicated once
}

TEST_F(SqlExtensionsTest, DistinctWithAggregation) {
  ResultSet rs = MustQuery(
      "select distinct count(*) as n from t group by g order by n");
  // Group sizes are 3 ('a'), 3 ('b'), 1 ('c') -> distinct {1, 3}.
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  EXPECT_EQ(rs.rows[1][0], Value::Int(3));
}

TEST_F(SqlExtensionsTest, HavingFiltersGroups) {
  ResultSet rs = MustQuery(
      "select g, sum(v) as s from t group by g having sum(v) > 4 "
      "order by g");
  ASSERT_EQ(rs.num_rows(), 2u);  // b (12), c (6); a (4) filtered
  EXPECT_EQ(rs.rows[0][0], Value::Str("b"));
  EXPECT_EQ(rs.rows[1][0], Value::Str("c"));
}

TEST_F(SqlExtensionsTest, HavingMayUseAggregatesNotInSelectList) {
  ResultSet rs = MustQuery(
      "select g from t group by g having count(*) = 1");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("c"));
}

TEST_F(SqlExtensionsTest, HavingWithoutAggregationIsError) {
  EXPECT_EQ(db_.Execute("select g from t having g = 'a'").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlExtensionsTest, LimitTruncatesAfterOrdering) {
  ResultSet rs = MustQuery("select v from t order by v desc limit 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(6));
  EXPECT_EQ(rs.rows[1][0], Value::Int(5));
  EXPECT_EQ(MustQuery("select v from t limit 0").num_rows(), 0u);
  // Limit larger than the result is a no-op.
  EXPECT_EQ(MustQuery("select v from t limit 100").num_rows(), 7u);
}

TEST_F(SqlExtensionsTest, LimitOnAggregatedQuery) {
  ResultSet rs = MustQuery(
      "select g, sum(v) as s from t group by g order by s desc limit 1");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("b"));
}

TEST_F(SqlExtensionsTest, InList) {
  ResultSet rs = MustQuery(
      "select v from t where g in ('a', 'c') order by v");
  ASSERT_EQ(rs.num_rows(), 4u);
  EXPECT_EQ(rs.rows[3][0], Value::Int(6));
  rs = MustQuery("select v from t where v in (1, 3, 99) order by v");
  ASSERT_EQ(rs.num_rows(), 3u);  // two 1s + one 3
}

TEST_F(SqlExtensionsTest, NotIn) {
  ResultSet rs = MustQuery(
      "select distinct g from t where g not in ('a', 'b')");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("c"));
}

TEST_F(SqlExtensionsTest, Between) {
  ResultSet rs = MustQuery(
      "select v from t where v between 3 and 5 order by v");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
  EXPECT_EQ(rs.rows[2][0], Value::Int(5));
  rs = MustQuery("select v from t where v not between 2 and 5 order by v");
  ASSERT_EQ(rs.num_rows(), 3u);  // 1, 1, 6
}

TEST_F(SqlExtensionsTest, BetweenBindsTighterThanAnd) {
  // `v between 1 and 2 and g = 'a'` must parse as
  // `(v between 1 and 2) and (g = 'a')`.
  ResultSet rs = MustQuery(
      "select v from t where v between 1 and 2 and g = 'a' order by v");
  ASSERT_EQ(rs.num_rows(), 3u);  // 1, 1, 2 (all in group a)
}

TEST_F(SqlExtensionsTest, InDesugarsToOrChain) {
  auto stmt = Parser::ParseStatement("select v from t where v in (1, 2)");
  ASSERT_OK(stmt.status());
  const auto& sel = std::get<SelectStmt>(*stmt);
  EXPECT_EQ(sel.where->ToString(), "((v = 1) or (v = 2))");
}

TEST_F(SqlExtensionsTest, CombinedClauses) {
  ResultSet rs = MustQuery(
      "select distinct g, sum(v) as s from t where v between 1 and 5 "
      "group by g having count(*) >= 2 order by s desc limit 1");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Str("b"));
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_double(), 12.0);
}

TEST_F(SqlExtensionsTest, ToStringRoundTrip) {
  auto stmt = Parser::ParseStatement(
      "select distinct g from t group by g having count(*) > 1 "
      "order by g limit 5");
  ASSERT_OK(stmt.status());
  std::string text = std::get<SelectStmt>(*stmt).ToString();
  EXPECT_NE(text.find("distinct"), std::string::npos);
  EXPECT_NE(text.find("having"), std::string::npos);
  EXPECT_NE(text.find("limit 5"), std::string::npos);
  // The printed form parses back to the same form.
  auto reparsed = Parser::ParseStatement(text);
  ASSERT_OK(reparsed.status());
  EXPECT_EQ(std::get<SelectStmt>(*reparsed).ToString(), text);
}

}  // namespace
}  // namespace strip
