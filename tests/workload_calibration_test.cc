// Pins the workload-calibration statistics documented in DESIGN.md §7:
// the trace/population defaults must keep matching the numbers the paper
// states (~12 composite recomputations per price change, ~10x activity
// spread), or the figure benches silently drift from the paper's regime.

#include <gtest/gtest.h>

#include "strip/market/populate.h"
#include "strip/market/pta_runner.h"
#include "tests/test_util.h"

namespace strip {
namespace {

TEST(WorkloadCalibrationTest, CompositesPerPriceChangeNearPaper) {
  // Full-size population, small trace volume: measure the change-weighted
  // mean number of composites affected per update — the paper states ~12
  // (§5.1). Accept the same order of magnitude (5-40).
  TraceOptions topts = TraceOptions::Scaled(0.02);
  topts.seed = 5;
  MarketTrace trace = MarketTrace::Generate(topts);
  PtaConfig cfg = PtaConfig::PaperScale();
  Database db;
  ASSERT_OK(PopulatePtaTables(db, trace, cfg));

  // comps per stock, from comps_list.
  auto rs = db.Execute(
      "select symbol, count(*) as n from comps_list group by symbol");
  ASSERT_OK(rs.status());
  std::vector<int64_t> comps_of(
      static_cast<size_t>(topts.num_stocks), 0);
  for (const auto& row : rs->rows) {
    int idx = std::stoi(row[0].as_string().substr(1));
    comps_of[static_cast<size_t>(idx)] = row[1].as_int();
  }
  double weighted = 0;
  for (const Quote& q : trace.quotes()) {
    weighted += static_cast<double>(comps_of[static_cast<size_t>(q.stock)]);
  }
  double mean = weighted / static_cast<double>(trace.quotes().size());
  EXPECT_GE(mean, 5.0) << "composite fan-in collapsed";
  EXPECT_LE(mean, 40.0) << "composite fan-in exploded (skew miscalibrated)";
}

TEST(WorkloadCalibrationTest, ActivitySpreadNearPaperAnecdote) {
  // §4.2: heavily traded stocks see "a few thousand" trades/day vs "a few
  // hundred" for light ones — roughly one order of magnitude between the
  // hot tail and the median, not web-scale skew.
  TraceOptions topts;  // defaults
  MarketTrace trace = MarketTrace::Generate(topts);
  const auto& w = trace.activity_weights();
  double hottest = w[0];
  double median = w[w.size() / 2];
  double ratio = hottest / median;
  EXPECT_GE(ratio, 3.0);
  EXPECT_LE(ratio, 60.0);
}

TEST(WorkloadCalibrationTest, UpdateVolumeTracksPaper) {
  // Paper: "each run contains over 60,000 stock price changes" in 30 min.
  TraceOptions full = TraceOptions::PaperScale();
  EXPECT_EQ(full.num_stocks, 6600);
  EXPECT_DOUBLE_EQ(full.duration_seconds, 1800);
  MarketTrace trace = MarketTrace::Generate(full);
  EXPECT_GE(trace.quotes().size(), 60000u);
  EXPECT_LE(trace.quotes().size(), 75000u);  // "over 60k", same order
}

TEST(WorkloadCalibrationTest, PaperScalePopulationSizes) {
  PtaConfig cfg = PtaConfig::PaperScale();
  EXPECT_EQ(cfg.num_composites, 400);
  EXPECT_EQ(cfg.stocks_per_composite, 200);  // => 80,000 comps_list rows
  EXPECT_EQ(cfg.num_options, 50000);
}

}  // namespace
}  // namespace strip
