// ThreadedExecutor stress tests: the sharded ready queues, batch dequeue,
// dedicated timer thread, and atomic drain accounting under loads the
// basic executor tests don't reach — tasks spawning tasks, Drain racing
// submission, delay-queue promotion ordering, and Shutdown mid-storm.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "strip/txn/threaded_executor.h"
#include "tests/test_util.h"

namespace strip {
namespace {

TaskPtr MakeTask(uint64_t id, Timestamp release = 0) {
  auto t = std::make_shared<TaskControlBlock>(id);
  t->release_time = release;
  return t;
}

TEST(ThreadedExecutorStressTest, TasksSpawningTasksAllDrain) {
  // A tree of tasks three levels deep: Drain must wait for work submitted
  // BY running tasks, not just the initially submitted set (the in-flight
  // counter covers children because they are counted before their parent
  // finishes).
  ThreadedExecutor ex(4);
  std::atomic<int> runs{0};
  std::atomic<uint64_t> ids{1000};
  std::function<void(int)> spawn = [&](int depth) {
    auto t = MakeTask(ids.fetch_add(1));
    t->work = [&, depth](TaskControlBlock&) {
      ++runs;
      if (depth > 0) {
        spawn(depth - 1);
        spawn(depth - 1);
      }
      return Status::OK();
    };
    ex.Submit(std::move(t));
  };
  for (int i = 0; i < 8; ++i) spawn(2);  // 8 roots * (1 + 2 + 4) = 56
  ex.Drain();
  EXPECT_EQ(runs.load(), 56);
  EXPECT_EQ(ex.stats().tasks_run, 56u);
  ex.Shutdown();
}

TEST(ThreadedExecutorStressTest, ManyProducersManyTasks) {
  // External producer threads race Submit against the workers; every task
  // must run exactly once and the stats must add up.
  ThreadedExecutor ex(4, SchedulingPolicy::kFifo, /*dequeue_batch=*/4);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> runs{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto t = MakeTask(static_cast<uint64_t>(p * kPerProducer + i));
        t->work = [&](TaskControlBlock&) {
          ++runs;
          return Status::OK();
        };
        ex.Submit(std::move(t));
      }
    });
  }
  for (auto& p : producers) p.join();
  ex.Drain();
  EXPECT_EQ(runs.load(), kProducers * kPerProducer);
  EXPECT_EQ(ex.stats().tasks_run,
            static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(ex.stats().tasks_failed, 0u);
  ex.Shutdown();
}

TEST(ThreadedExecutorStressTest, DelayedTasksPromoteInReleaseOrder) {
  // With one worker (one shard, exact ordering) delayed tasks must run in
  // release-time order even when submitted shuffled: the timer thread
  // promotes them from the delay heap as their times arrive.
  ThreadedExecutor ex(1);
  std::mutex mu;
  std::vector<uint64_t> order;
  Timestamp base = ex.Now() + SecondsToMicros(0.05);
  const Timestamp gaps[] = {30000, 0, 20000, 10000};  // ids 0..3 shuffled
  for (uint64_t i = 0; i < 4; ++i) {
    auto t = MakeTask(i, base + gaps[i]);
    t->work = [&, i](TaskControlBlock&) {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(i);
      return Status::OK();
    };
    ex.Submit(std::move(t));
  }
  ex.Drain();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
  ex.Shutdown();
}

TEST(ThreadedExecutorStressTest, MixedImmediateAndDelayedDrain) {
  // Drain must cover tasks sitting in the delay queue too: a delayed task
  // is in flight from Submit, so Drain cannot return before it runs.
  ThreadedExecutor ex(2);
  std::atomic<int> runs{0};
  for (int i = 0; i < 20; ++i) {
    Timestamp release =
        (i % 2 == 0) ? 0 : ex.Now() + SecondsToMicros(0.02 + 0.001 * i);
    auto t = MakeTask(static_cast<uint64_t>(i), release);
    t->work = [&](TaskControlBlock&) {
      ++runs;
      return Status::OK();
    };
    ex.Submit(std::move(t));
  }
  ex.Drain();
  EXPECT_EQ(runs.load(), 20);
  ex.Shutdown();
}

TEST(ThreadedExecutorStressTest, ConcurrentDrainCallers) {
  // Several threads Drain() at once while work is in progress; all must
  // return, and only after every task ran.
  ThreadedExecutor ex(2);
  std::atomic<int> runs{0};
  for (int i = 0; i < 100; ++i) {
    auto t = MakeTask(static_cast<uint64_t>(i));
    t->work = [&](TaskControlBlock&) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ++runs;
      return Status::OK();
    };
    ex.Submit(std::move(t));
  }
  std::vector<std::thread> drainers;
  for (int d = 0; d < 4; ++d) {
    drainers.emplace_back([&] {
      ex.Drain();
      EXPECT_EQ(runs.load(), 100);
    });
  }
  for (auto& d : drainers) d.join();
  ex.Shutdown();
}

TEST(ThreadedExecutorStressTest, ShutdownRunsQueuedReadyTasks) {
  // Shutdown's contract: ready tasks still queued are run to completion,
  // delayed tasks are dropped. Stress it with a full set of ready tasks
  // racing the shutdown.
  std::atomic<int> runs{0};
  std::atomic<int> dropped_runs{0};
  {
    ThreadedExecutor ex(2);
    for (int i = 0; i < 200; ++i) {
      auto t = MakeTask(static_cast<uint64_t>(i));
      t->work = [&](TaskControlBlock&) {
        ++runs;
        return Status::OK();
      };
      ex.Submit(std::move(t));
    }
    auto delayed = MakeTask(999, ex.Now() + SecondsToMicros(30));
    delayed->work = [&](TaskControlBlock&) {
      ++dropped_runs;
      return Status::OK();
    };
    ex.Submit(std::move(delayed));
    ex.Shutdown();
  }
  EXPECT_EQ(runs.load(), 200);
  EXPECT_EQ(dropped_runs.load(), 0);
}

TEST(ThreadedExecutorStressTest, ObserverSeesEveryFinishedTask) {
  // The task observer runs on worker threads; a mutex-guarded recorder
  // must observe each task exactly once with its finish time stamped.
  ThreadedExecutor ex(4);
  std::mutex mu;
  std::vector<uint64_t> seen;
  ex.set_task_observer([&](const TaskControlBlock& t) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_GT(t.finish_time, 0);
    seen.push_back(t.id());
  });
  for (int i = 0; i < 64; ++i) {
    auto t = MakeTask(static_cast<uint64_t>(i));
    t->work = [](TaskControlBlock&) { return Status::OK(); };
    ex.Submit(std::move(t));
  }
  ex.Drain();
  ex.set_task_observer(nullptr);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 64u);
  for (uint64_t i = 0; i < 64; ++i) EXPECT_EQ(seen[i], i);
  ex.Shutdown();
}

TEST(ThreadedExecutorStressTest, FailedTasksCounted) {
  ThreadedExecutor ex(2);
  for (int i = 0; i < 10; ++i) {
    auto t = MakeTask(static_cast<uint64_t>(i));
    t->work = [i](TaskControlBlock&) {
      return i % 2 == 0 ? Status::OK() : Status::Internal("boom");
    };
    ex.Submit(std::move(t));
  }
  ex.Drain();
  EXPECT_EQ(ex.stats().tasks_run, 10u);
  EXPECT_EQ(ex.stats().tasks_failed, 5u);
  ex.Shutdown();
}

}  // namespace
}  // namespace strip
