// Unit tests for the planning substrate: InputSet resolution, join-row
// access, conjunct splitting and classification.

#include <gtest/gtest.h>

#include "strip/sql/parser.h"
#include "strip/sql/plan.h"
#include "strip/storage/table.h"
#include "tests/test_util.h"

namespace strip {
namespace {

Schema AB() {
  Schema s;
  s.AddColumn("a", ValueType::kInt);
  s.AddColumn("b", ValueType::kString);
  return s;
}

Schema BC() {
  Schema s;
  s.AddColumn("b", ValueType::kString);
  s.AddColumn("c", ValueType::kDouble);
  return s;
}

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : t1_("t1", AB()), t2_("t2", BC()) {
    inputs_.Add("t1", &t1_, nullptr);
    inputs_.Add("t2", &t2_, nullptr);
  }

  ExprPtr Parse(const std::string& text) {
    auto e = Parser::ParseExpression(text);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return e.ok() ? e.take() : nullptr;
  }

  Table t1_;
  Table t2_;
  InputSet inputs_;
};

TEST_F(PlanTest, QualifiedResolution) {
  ASSERT_OK_AND_ASSIGN(ColumnAccessor acc, inputs_.Resolve("t1", "a"));
  EXPECT_EQ(acc.input, 0);
  EXPECT_EQ(acc.column, 0);
  ASSERT_OK_AND_ASSIGN(acc, inputs_.Resolve("t2", "c"));
  EXPECT_EQ(acc.input, 1);
  EXPECT_EQ(acc.column, 1);
  EXPECT_EQ(inputs_.Resolve("t1", "c").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(inputs_.Resolve("zzz", "a").status().code(),
            StatusCode::kNotFound);
}

TEST_F(PlanTest, BareNameResolutionAndAmbiguity) {
  ASSERT_OK_AND_ASSIGN(ColumnAccessor acc, inputs_.Resolve("", "a"));
  EXPECT_EQ(acc.input, 0);
  // `b` exists in both inputs.
  EXPECT_EQ(inputs_.Resolve("", "b").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(inputs_.Resolve("", "zzz").status().code(),
            StatusCode::kNotFound);
}

TEST_F(PlanTest, JoinRowReadThroughSlotsAndExtras) {
  // t1 is a standard table (slot); a temp table contributes extras.
  Schema ts;
  ts.AddColumn("x", ValueType::kInt);
  TempTable temp = TempTable::Materialized("tmp", ts);
  InputSet mixed;
  mixed.Add("t1", &t1_, nullptr);
  mixed.Add("tmp", nullptr, &temp);
  EXPECT_EQ(mixed.num_slots(), 1);
  EXPECT_EQ(mixed.num_extras(), 1);

  JoinRow row;
  row.slots.resize(1);
  row.extras.resize(1);
  RecordRef rec = MakeRecord({Value::Int(7), Value::Str("s")});
  mixed.FillFromStandard(row, 0, rec);
  TempTuple tup{{}, {Value::Int(42)}};
  mixed.FillFromTemp(row, 1, tup);

  ASSERT_OK_AND_ASSIGN(ColumnAccessor a, mixed.Resolve("t1", "a"));
  EXPECT_EQ(mixed.Read(row, a), Value::Int(7));
  ASSERT_OK_AND_ASSIGN(ColumnAccessor x, mixed.Resolve("tmp", "x"));
  EXPECT_EQ(mixed.Read(row, x), Value::Int(42));

  JoinRowContext ctx(&mixed, &row);
  ASSERT_OK_AND_ASSIGN(Value v, ctx.GetColumn("", "x"));
  EXPECT_EQ(v, Value::Int(42));
}

TEST_F(PlanTest, PseudoColumnsResolveAfterInputs) {
  std::map<std::string, Value> pseudo = {
      {"commit_time", Value::Int(123)},
      {"a", Value::Int(999)},  // shadowed by t1.a
  };
  JoinRow row;
  row.slots.resize(2);
  row.extras.resize(0);
  row.slots[0] = MakeRecord({Value::Int(1), Value::Str("x")});
  row.slots[1] = MakeRecord({Value::Str("y"), Value::Double(2)});
  JoinRowContext ctx(&inputs_, &row, &pseudo);
  ASSERT_OK_AND_ASSIGN(Value v, ctx.GetColumn("", "commit_time"));
  EXPECT_EQ(v, Value::Int(123));
  // Real columns win over pseudo columns.
  ASSERT_OK_AND_ASSIGN(v, ctx.GetColumn("", "a"));
  EXPECT_EQ(v, Value::Int(1));
}

TEST_F(PlanTest, SplitConjunctsFlattensAndTree) {
  ExprPtr e = Parse("a = 1 and (c > 2 and t1.b = t2.b) and not a = 3");
  std::vector<const Expr*> out;
  SplitConjuncts(e.get(), out);
  ASSERT_EQ(out.size(), 4u);
  // ORs are not split.
  ExprPtr o = Parse("a = 1 or c = 2");
  out.clear();
  SplitConjuncts(o.get(), out);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  SplitConjuncts(nullptr, out);
  EXPECT_TRUE(out.empty());
}

TEST_F(PlanTest, ClassifyFindsEquiJoins) {
  ExprPtr e = Parse("t1.b = t2.b and a > 1 and c < 2.0 and a + c = 3");
  ASSERT_OK_AND_ASSIGN(std::vector<Conjunct> cs,
                       ClassifyConjuncts(e.get(), inputs_, nullptr));
  ASSERT_EQ(cs.size(), 4u);
  // t1.b = t2.b: an equi-join between inputs 0 and 1.
  EXPECT_TRUE(cs[0].equi_join);
  EXPECT_EQ(cs[0].referenced, (std::vector<int>{0, 1}));
  // a > 1: single-input.
  EXPECT_FALSE(cs[1].equi_join);
  EXPECT_EQ(cs[1].referenced, (std::vector<int>{0}));
  // c < 2.0: single-input on input 1.
  EXPECT_EQ(cs[2].referenced, (std::vector<int>{1}));
  // a + c = 3: references both but each side is not single-input -> not an
  // equi-join usable for hash/index joins.
  EXPECT_FALSE(cs[3].equi_join);
  EXPECT_EQ(cs[3].referenced, (std::vector<int>{0, 1}));
}

TEST_F(PlanTest, ClassifyEquiJoinOnExpressions) {
  // Expression sides still qualify when each references one input.
  ExprPtr e = Parse("a * 2 = c + 1");
  ASSERT_OK_AND_ASSIGN(std::vector<Conjunct> cs,
                       ClassifyConjuncts(e.get(), inputs_, nullptr));
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_TRUE(cs[0].equi_join);
  EXPECT_EQ(cs[0].lhs_input, 0);
  EXPECT_EQ(cs[0].rhs_input, 1);
}

TEST_F(PlanTest, ClassifyRejectsUnknownColumns) {
  ExprPtr e = Parse("nope = 1");
  EXPECT_EQ(ClassifyConjuncts(e.get(), inputs_, nullptr).status().code(),
            StatusCode::kNotFound);
  // ...unless it is a pseudo column.
  std::map<std::string, Value> pseudo = {{"nope", Value::Int(1)}};
  ASSERT_OK_AND_ASSIGN(std::vector<Conjunct> cs,
                       ClassifyConjuncts(e.get(), inputs_, &pseudo));
  EXPECT_TRUE(cs[0].referenced.empty());
}

}  // namespace
}  // namespace strip
