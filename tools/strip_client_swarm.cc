// strip_client_swarm: load driver and state-dump client for strip_server.
//
// Load mode (default): N client threads run a mixed feed/query workload
// against the demo schema for S seconds, then (optionally) an overload
// phase of low-priority feeders that the server's admission control should
// shed. Emits BENCH_server.json (--out=...) with client-observed latency
// percentiles, shed counts, and the server's full metrics registry.
//
//   strip_client_swarm --port=N [--clients=8] [--seconds=5] [--batch=8]
//     [--symbols=64] [--feed-fraction=0.7] [--overload-clients=0]
//     [--overload-seconds=0] [--out=BENCH_server.json]
//
// Dump mode: drains the server, then prints the full contents of `quotes`
// and `quote_stats` as sorted TSV — byte-comparable across a kill -9 /
// restart cycle (the CI smoke test's recovery oracle).
//
//   strip_client_swarm --port=N --dump
//
// Shutdown mode: asks the server to stop gracefully.
//
//   strip_client_swarm --port=N --shutdown

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "pta_bench_common.h"
#include "strip/net/client.h"

namespace {

using strip::AdminOp;
using strip::Client;
using strip::FeedRecord;
using strip::SessionPriority;
using strip::Status;
using strip::Value;

struct Flags {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int clients = 8;
  double seconds = 5.0;
  int batch = 8;
  int symbols = 64;
  double feed_fraction = 0.7;
  int overload_clients = 0;
  double overload_seconds = 0.0;
  std::string out;
  bool dump = false;
  bool checkpoint = false;
  bool shutdown = false;
  uint64_t seed = 42;
};

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Symbol(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "sym%04d", i);
  return buf;
}

/// One worker's tally; merged after join.
struct WorkerStats {
  std::vector<int64_t> latencies_us;
  uint64_t feed_batches = 0;
  uint64_t feed_records = 0;
  uint64_t execs = 0;
  uint64_t shed = 0;        // kAborted responses (admission control)
  uint64_t refused = 0;     // sessions refused at Hello
  uint64_t errors = 0;      // everything else
  uint64_t last_lsn = 0;
};

/// Runs one client until the deadline. Low-priority overload workers feed
/// only (the load the server is expected to shed); normal workers mix
/// feeds and point queries like an application would.
void RunWorker(const Flags& flags, SessionPriority priority, int worker_id,
               double seconds, WorkerStats* out) {
  std::mt19937_64 rng(flags.seed * 7919 + worker_id);
  std::uniform_int_distribution<int> sym(0, flags.symbols - 1);
  std::uniform_real_distribution<double> price(1.0, 500.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  int64_t deadline = SteadyMicros() + static_cast<int64_t>(seconds * 1e6);
  // A session refused at Hello (admission control) is retried with
  // backoff, as a well-behaved shed client would.
  std::unique_ptr<Client> client;
  for (;;) {
    auto attempt = Client::Connect(flags.host, flags.port, priority,
                                   "swarm-" + std::to_string(worker_id));
    if (attempt.ok()) {
      client = std::move(*attempt);
      break;
    }
    out->refused += 1;
    if (SteadyMicros() > deadline) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  auto stmt = client->Prepare(
      "select total, n from quote_stats where symbol = ?");
  if (!stmt.ok()) {
    out->errors += 1;
    return;
  }
  while (SteadyMicros() < deadline) {
    bool feed = priority == SessionPriority::kLow ||
                coin(rng) < flags.feed_fraction;
    int64_t start = SteadyMicros();
    if (feed) {
      std::vector<FeedRecord> batch;
      batch.reserve(static_cast<size_t>(flags.batch));
      for (int i = 0; i < flags.batch; ++i) {
        FeedRecord rec;
        rec.at = 0;  // server stamps arrival
        rec.values = {Value::Str(Symbol(sym(rng))),
                      Value::Double(price(rng))};
        batch.push_back(std::move(rec));
      }
      auto resp = client->FeedAppend("quotes", batch);
      if (resp.ok()) {
        out->feed_batches += 1;
        out->feed_records += batch.size();
        out->last_lsn = std::max(out->last_lsn, resp->lsn);
      } else if (resp.status().code() == strip::StatusCode::kAborted) {
        out->shed += 1;
        continue;  // shed responses are not service latency
      } else {
        out->errors += 1;
        return;  // connection state unknown; stop this worker
      }
    } else {
      auto resp = client->Exec(stmt->handle,
                                  {Value::Str(Symbol(sym(rng)))});
      if (resp.ok()) {
        out->execs += 1;
      } else if (resp.status().code() == strip::StatusCode::kAborted) {
        out->shed += 1;
        continue;
      } else {
        out->errors += 1;
        return;
      }
    }
    out->latencies_us.push_back(SteadyMicros() - start);
  }
}

double PercentileOf(std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return static_cast<double>(sorted[idx]);
}

int Dump(const Flags& flags) {
  auto client = Client::Connect(flags.host, flags.port,
                                SessionPriority::kHigh, "dump");
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  // Quiesce first so the dump covers every acknowledged batch's rule
  // cascade, not a prefix of it.
  if (auto drained = (*client)->Admin(AdminOp::kDrain); !drained.ok()) {
    std::fprintf(stderr, "drain: %s\n",
                 drained.status().ToString().c_str());
    return 1;
  }
  for (const char* sql :
       {"select symbol, price from quotes order by symbol",
        "select symbol, total, n from quote_stats order by symbol"}) {
    auto stmt = (*client)->Prepare(sql);
    if (!stmt.ok()) {
      std::fprintf(stderr, "prepare: %s\n",
                   stmt.status().ToString().c_str());
      return 1;
    }
    auto rs = (*client)->Exec(stmt->handle);
    if (!rs.ok()) {
      std::fprintf(stderr, "exec: %s\n", rs.status().ToString().c_str());
      return 1;
    }
    std::printf("== %s\n", sql);
    for (const auto& row : rs->rows) {
      std::string line;
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) line += '\t';
        line += row[c].ToString();
      }
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&](const char* name) -> const char* {
      size_t n = std::strlen(name);
      if (std::strncmp(a, name, n) == 0 && a[n] == '=') return a + n + 1;
      return nullptr;
    };
    const char* v;
    if ((v = val("--host"))) flags.host = v;
    else if ((v = val("--port"))) flags.port = static_cast<uint16_t>(std::atoi(v));
    else if ((v = val("--clients"))) flags.clients = std::atoi(v);
    else if ((v = val("--seconds"))) flags.seconds = std::atof(v);
    else if ((v = val("--batch"))) flags.batch = std::atoi(v);
    else if ((v = val("--symbols"))) flags.symbols = std::atoi(v);
    else if ((v = val("--feed-fraction"))) flags.feed_fraction = std::atof(v);
    else if ((v = val("--overload-clients"))) flags.overload_clients = std::atoi(v);
    else if ((v = val("--overload-seconds"))) flags.overload_seconds = std::atof(v);
    else if ((v = val("--out"))) flags.out = v;
    else if ((v = val("--seed"))) flags.seed = static_cast<uint64_t>(std::atoll(v));
    else if (std::strcmp(a, "--dump") == 0) flags.dump = true;
    else if (std::strcmp(a, "--checkpoint") == 0) flags.checkpoint = true;
    else if (std::strcmp(a, "--shutdown") == 0) flags.shutdown = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return 2;
    }
  }
  if (flags.port == 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }

  if (flags.dump) return Dump(flags);
  if (flags.checkpoint) {
    auto client = Client::Connect(flags.host, flags.port,
                                  SessionPriority::kHigh, "checkpoint");
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    auto resp = (*client)->Admin(AdminOp::kCheckpoint);
    if (!resp.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    std::printf("checkpoint at lsn %llu\n",
                static_cast<unsigned long long>(resp->lsn));
    return 0;
  }
  if (flags.shutdown) {
    auto client = Client::Connect(flags.host, flags.port,
                                  SessionPriority::kHigh, "shutdown");
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    auto resp = (*client)->Admin(AdminOp::kShutdown);
    if (!resp.ok()) {
      std::fprintf(stderr, "shutdown: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    std::printf("server stopping (lsn %llu)\n",
                static_cast<unsigned long long>(resp->lsn));
    return 0;
  }

  // --- phase 1: steady mixed load -----------------------------------------
  std::vector<WorkerStats> stats(static_cast<size_t>(flags.clients));
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < flags.clients; ++i) {
      threads.emplace_back(RunWorker, std::cref(flags),
                           SessionPriority::kNormal, i, flags.seconds,
                           &stats[static_cast<size_t>(i)]);
    }
    for (auto& t : threads) t.join();
  }

  // --- phase 2: overload (low-priority feeders the watchdog should shed) --
  std::vector<WorkerStats> overload(
      static_cast<size_t>(std::max(flags.overload_clients, 0)));
  if (flags.overload_clients > 0 && flags.overload_seconds > 0) {
    std::vector<std::thread> threads;
    for (int i = 0; i < flags.overload_clients; ++i) {
      threads.emplace_back(RunWorker, std::cref(flags),
                           SessionPriority::kLow, 1000 + i,
                           flags.overload_seconds,
                           &overload[static_cast<size_t>(i)]);
    }
    // Normal traffic continues underneath, as it would in production.
    std::vector<WorkerStats> fg(static_cast<size_t>(flags.clients));
    for (int i = 0; i < flags.clients; ++i) {
      threads.emplace_back(RunWorker, std::cref(flags),
                           SessionPriority::kNormal, 2000 + i,
                           flags.overload_seconds,
                           &fg[static_cast<size_t>(i)]);
    }
    for (auto& t : threads) t.join();
    stats.insert(stats.end(), fg.begin(), fg.end());
  }

  WorkerStats total;
  std::vector<int64_t> lat;
  for (const auto& s : stats) {
    lat.insert(lat.end(), s.latencies_us.begin(), s.latencies_us.end());
    total.feed_batches += s.feed_batches;
    total.feed_records += s.feed_records;
    total.execs += s.execs;
    total.shed += s.shed;
    total.refused += s.refused;
    total.errors += s.errors;
    total.last_lsn = std::max(total.last_lsn, s.last_lsn);
  }
  uint64_t overload_shed = 0, overload_refused = 0, overload_ok = 0;
  for (const auto& s : overload) {
    overload_shed += s.shed;
    overload_refused += s.refused;
    overload_ok += s.feed_batches;
    total.errors += s.errors;
  }
  std::sort(lat.begin(), lat.end());
  double p50 = PercentileOf(lat, 0.50);
  double p95 = PercentileOf(lat, 0.95);
  double p99 = PercentileOf(lat, 0.99);

  std::printf(
      "ops %zu (feed %llu batches / %llu records, exec %llu)  "
      "p50 %.0fus p95 %.0fus p99 %.0fus  shed %llu refused %llu "
      "errors %llu  last_lsn %llu\n",
      lat.size(), static_cast<unsigned long long>(total.feed_batches),
      static_cast<unsigned long long>(total.feed_records),
      static_cast<unsigned long long>(total.execs), p50, p95, p99,
      static_cast<unsigned long long>(total.shed + overload_shed),
      static_cast<unsigned long long>(total.refused + overload_refused),
      static_cast<unsigned long long>(total.errors),
      static_cast<unsigned long long>(total.last_lsn));
  if (total.errors != 0) return 1;

  if (flags.out.empty()) return 0;

  // Pull the server's own registry + health for the report.
  auto admin = Client::Connect(flags.host, flags.port,
                               SessionPriority::kHigh, "swarm-admin");
  if (!admin.ok()) {
    std::fprintf(stderr, "admin connect: %s\n",
                 admin.status().ToString().c_str());
    return 1;
  }
  auto metrics = (*admin)->Admin(AdminOp::kMetrics);
  auto health = (*admin)->Admin(AdminOp::kHealth);
  if (!metrics.ok() || !health.ok()) {
    std::fprintf(stderr, "admin metrics/health failed\n");
    return 1;
  }

  strip::bench::BenchReport report("server");
  report.Config([&](strip::JsonWriter& w) {
    w.Key("clients").Int(flags.clients);
    w.Key("seconds").Double(flags.seconds);
    w.Key("batch").Int(flags.batch);
    w.Key("symbols").Int(flags.symbols);
    w.Key("feed_fraction").Double(flags.feed_fraction);
    w.Key("overload_clients").Int(flags.overload_clients);
    w.Key("overload_seconds").Double(flags.overload_seconds);
    w.Key("seed").Uint(flags.seed);
  });
  report.Metrics([&](strip::JsonWriter& w) {
    w.Key("client").BeginObject();
    w.Key("ops").Uint(lat.size());
    w.Key("feed_batches").Uint(total.feed_batches);
    w.Key("feed_records").Uint(total.feed_records);
    w.Key("execs").Uint(total.execs);
    w.Key("errors").Uint(total.errors);
    w.Key("p50_us").Double(p50);
    w.Key("p95_us").Double(p95);
    w.Key("p99_us").Double(p99);
    w.Key("last_lsn").Uint(total.last_lsn);
    w.EndObject();
    w.Key("shed").BeginObject();
    w.Key("requests_shed").Uint(total.shed + overload_shed);
    w.Key("sessions_refused").Uint(total.refused + overload_refused);
    w.Key("overload_batches_admitted").Uint(overload_ok);
    w.Key("exercised")
        .Bool(overload_shed + overload_refused + total.shed > 0);
    w.EndObject();
    w.Key("health").Raw(health->body);
    w.Key("registry").Raw(metrics->body);
  });
  if (!report.WriteFile(flags.out)) {
    std::fprintf(stderr, "cannot write %s\n", flags.out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", flags.out.c_str());
  return 0;
}
