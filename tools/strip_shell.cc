// strip_shell — an interactive SQL shell over the STRIP engine.
//
//   build/tools/strip_shell [script.sql ...]
//
// Executes any script files given on the command line, then reads
// statements from stdin (';'-terminated, possibly spanning lines).
// Meta commands:
//   .tables          list tables with row counts
//   .schema <table>  show a table's columns
//   .rules           list rules
//   .views           list views
//   .run             drain the simulated executor (fire due rule actions)
//   .advance <sec>   advance virtual time by <sec> seconds, running tasks
//   .stats           rule / executor counters
//   .health          watchdog verdict + top rules by exec-time share
//   .metrics         full metrics-registry snapshot as JSON
//   .trace <file>    write the lifecycle trace ring as Chrome trace JSON
//                    (load in chrome://tracing); no arg prints to stdout
//   .explain <sql;>  show the executor's plan decisions for a SELECT
//   .quit            exit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <algorithm>
#include <memory>
#include <vector>

#include "strip/engine/database.h"
#include "strip/obs/watchdog.h"
#include "strip/sql/parser.h"
#include "strip/viewmaint/view_def.h"

namespace strip {
namespace {

void PrintResult(const ResultSet& rs) {
  if (rs.schema.num_columns() == 0) {
    std::printf("ok\n");
    return;
  }
  std::printf("%s", rs.ToString().c_str());
  std::printf("(%zu row%s)\n", rs.num_rows(),
              rs.num_rows() == 1 ? "" : "s");
}

void ExecuteAndPrint(Database& db, const std::string& sql) {
  auto stmts = Parser::ParseScript(sql);
  if (!stmts.ok()) {
    std::printf("error: %s\n", stmts.status().ToString().c_str());
    return;
  }
  if (stmts->size() == 1) {
    // Single statement: execute by text so it goes through the plan cache
    // (a re-typed statement reuses its prepared handle; see .stats).
    auto result = db.Execute(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    PrintResult(*result);
    return;
  }
  for (const Statement& stmt : *stmts) {
    auto result = db.Execute(stmt);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    PrintResult(*result);
  }
}

bool HandleMeta(Database& db, const std::string& line) {
  std::istringstream in(line);
  std::string cmd, arg;
  in >> cmd >> arg;
  if (cmd == ".quit" || cmd == ".exit") {
    std::exit(0);
  }
  if (cmd == ".tables") {
    for (const auto& name : db.catalog().ListTables()) {
      std::printf("%-24s %zu rows\n", name.c_str(),
                  db.catalog().FindTable(name)->size());
    }
    return true;
  }
  if (cmd == ".schema") {
    Table* t = db.catalog().FindTable(arg);
    if (t == nullptr) {
      std::printf("no table '%s'\n", arg.c_str());
    } else {
      std::printf("%s %s\n", t->name().c_str(),
                  t->schema().ToString().c_str());
    }
    return true;
  }
  if (cmd == ".rules") {
    for (const auto& name : db.rules().ListRules()) {
      const RuleDef* r = db.rules().FindRule(name);
      std::printf("%-24s on %-16s -> %s%s%s\n", name.c_str(),
                  r->table().c_str(), r->function_name().c_str(),
                  r->unique() ? " [unique]" : "",
                  r->enabled() ? "" : " (disabled)");
    }
    return true;
  }
  if (cmd == ".views") {
    for (const auto& name : db.views().ListViews()) {
      std::printf("%-24s %s\n", name.c_str(),
                  db.views().Find(name)->materialized ? "materialized"
                                                      : "virtual");
    }
    return true;
  }
  if (cmd == ".run") {
    db.simulated()->RunUntilQuiescent();
    std::printf("quiescent at t=%.3fs\n", MicrosToSeconds(db.Now()));
    return true;
  }
  if (cmd == ".advance") {
    double sec = arg.empty() ? 1.0 : std::atof(arg.c_str());
    db.simulated()->RunUntil(db.Now() + SecondsToMicros(sec));
    std::printf("t=%.3fs\n", MicrosToSeconds(db.Now()));
    return true;
  }
  if (cmd == ".explain") {
    std::string sql = line.substr(std::string(".explain").size());
    auto trace = db.Explain(sql);
    if (!trace.ok()) {
      std::printf("error: %s\n", trace.status().ToString().c_str());
    } else {
      for (const auto& step : *trace) std::printf("  %s\n", step.c_str());
    }
    return true;
  }
  if (cmd == ".stats") {
    const RuleStats& rs = db.rules().stats();
    const ExecutorStats& es = db.executor().stats();
    std::printf("rules: %llu triggered, %llu conditions true, "
                "%llu tasks created, %llu firings merged\n",
                (unsigned long long)rs.rules_triggered,
                (unsigned long long)rs.conditions_true,
                (unsigned long long)rs.tasks_created,
                (unsigned long long)rs.firings_merged);
    std::printf("executor: %llu tasks run (%llu failed), busy %.3fs, "
                "t=%.3fs\n",
                (unsigned long long)es.tasks_run,
                (unsigned long long)es.tasks_failed,
                MicrosToSeconds(es.busy_micros),
                MicrosToSeconds(db.Now()));
    Database::PlanCacheStats ps = db.plan_cache_stats();
    std::printf("plan cache: %zu entries (cap %zu), %zu hits, %zu misses\n",
                ps.entries, ps.capacity, ps.hits, ps.misses);
    return true;
  }
  if (cmd == ".health") {
    // One watchdog for the shell's lifetime: each .health judges the
    // interval since the previous one (the first only sets baselines).
    static std::unique_ptr<Watchdog> dog;
    if (dog == nullptr) {
      WatchdogSlo slo;
      slo.staleness_p99_us = SecondsToMicros(0.5);
      slo.queue_wait_p99_us = SecondsToMicros(0.5);
      slo.max_lock_abort_rate = 0.05;
      dog = std::make_unique<Watchdog>(&db.metrics(), slo);
    }
    WatchdogVerdict v = dog->Evaluate(db.Now());
    std::printf("watchdog: %s\n", v.ToJson().c_str());
    // Top rules by share of total rule execution time.
    auto hists = db.metrics().Histograms("rules.exec_us.");
    double total = 0;
    std::vector<std::pair<std::string, double>> shares;
    for (const auto& [name, h] : hists) {
      double us = static_cast<double>(h->sum());
      total += us;
      shares.emplace_back(name.substr(std::string("rules.exec_us.").size()),
                          us);
    }
    std::sort(shares.begin(), shares.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (shares.empty() || total == 0) {
      std::printf("no rule executions recorded yet\n");
    } else {
      size_t top = std::min<size_t>(3, shares.size());
      for (size_t i = 0; i < top; ++i) {
        std::printf("  %-24s %8.0f us  %5.1f%%\n", shares[i].first.c_str(),
                    shares[i].second, 100.0 * shares[i].second / total);
      }
    }
    return true;
  }
  if (cmd == ".metrics") {
    std::printf("%s\n", db.metrics().SnapshotJson().c_str());
    return true;
  }
  if (cmd == ".trace") {
    std::string json = db.trace_ring().ToChromeJson();
    if (arg.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(arg);
      if (!out) {
        std::printf("cannot open %s\n", arg.c_str());
      } else {
        out << json;
        std::printf("wrote %zu trace events to %s\n",
                    db.trace_ring().Snapshot().size(), arg.c_str());
      }
    }
    return true;
  }
  if (!cmd.empty() && cmd[0] == '.') {
    std::printf("unknown command %s\n", cmd.c_str());
    return true;
  }
  return false;
}

int Run(int argc, char** argv) {
  Database::Options opts;
  opts.mode = ExecutorMode::kSimulated;
  opts.advance_clock_by_cost = false;
  Database db(opts);

  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::stringstream buf;
    buf << file.rdbuf();
    Status st = db.ExecuteScript(buf.str());
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i], st.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s\n", argv[i]);
  }

  std::printf("STRIP shell. End statements with ';'. "
              "'.quit' to exit, '.tables'/'.rules'/'.stats' to inspect.\n");
  std::string pending;
  std::string line;
  while (true) {
    std::printf("%s", pending.empty() ? "strip> " : "  ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (pending.empty()) {
      std::string trimmed = line;
      while (!trimmed.empty() && std::isspace(
                 static_cast<unsigned char>(trimmed.front()))) {
        trimmed.erase(trimmed.begin());
      }
      if (trimmed.empty()) continue;
      if (trimmed[0] == '.') {
        HandleMeta(db, trimmed);
        continue;
      }
    }
    pending += line + "\n";
    if (line.find(';') != std::string::npos) {
      ExecuteAndPrint(db, pending);
      pending.clear();
    }
  }
  return 0;
}

}  // namespace
}  // namespace strip

int main(int argc, char** argv) { return strip::Run(argc, argv); }
