#!/usr/bin/env python3
"""Validate causal-trace exports: Chrome trace JSON and flight records.

  validate_trace.py FILE [...]
      Each FILE is either a Chrome trace_event document (TraceRing's
      ToChromeJson / the shell's .trace output) or a flight-recorder dump
      (obs/flight_recorder.h: {"reason", "wall_micros", "verdict",
      "trace", "metrics"}); the kind is auto-detected.

  validate_trace.py --self-test
      Runs the validator against embedded good and bad documents.

Beyond the schema, this checks the *semantics* a causal trace must obey:

  - every event carries args.id and args.trace_id;
  - per task track (tid), "X" slices properly nest — partial overlap
    would mean two executions of one task interleaved, which the
    executors cannot produce;
  - per task track, lifecycle order is monotonic: submit <= ready <=
    start, start + dur <= any later slice start, and the delayed
    release point never precedes the submit;
  - flight records name a reason, carry a null-or-object verdict with a
    valid state, and embed a well-formed metrics-registry snapshot.

Exits non-zero with a message on the first violation. Used by the CI
observability smoke step on a planted-failure chaos dump.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from validate_bench_json import check_registry_snapshot, fail, load_strict


_KINDS = ("submit", "delayed", "ready", "start", "finish",
          "commit", "abort", "restart", "merge")


def _event_kind(e):
    """Lifecycle kind of an instant, parsed from its label."""
    name = e.get("name", "")
    kind = name.split(":", 1)[0]
    return kind if kind in _KINDS else None


def check_chrome_trace(path, doc, where="$"):
    if doc.get("displayTimeUnit") != "ms":
        fail(path, f"{where}: missing displayTimeUnit 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, f"{where}: 'traceEvents' is not a list")

    tracks = {}  # tid -> {"slices": [(ts, dur)], "instants": {kind: [ts]}}
    for i, e in enumerate(events):
        here = f"{where}.traceEvents[{i}]"
        for field in ("name", "cat", "ph", "ts", "pid", "tid", "args"):
            if field not in e:
                fail(path, f"{here}: missing '{field}'")
        args = e["args"]
        if not isinstance(args, dict):
            fail(path, f"{here}: 'args' is not an object")
        for field in ("id", "trace_id"):
            if not isinstance(args.get(field), int) or args[field] < 0:
                fail(path, f"{here}: args.{field} is not a non-negative int")
        track = tracks.setdefault(e["tid"], {"slices": [], "instants": {}})
        if e["ph"] == "X":
            if "dur" not in e or e["dur"] < 1:
                fail(path, f"{here}: 'X' slice without positive dur")
            track["slices"].append((e["ts"], e["dur"]))
        elif e["ph"] == "i":
            if e.get("s") != "t":
                fail(path, f"{here}: instant without scope 's':'t'")
            kind = _event_kind(e)
            if kind is not None:
                track["instants"].setdefault(kind, []).append(e["ts"])
        else:
            fail(path, f"{here}: phase {e['ph']!r} "
                       "(TraceRing only emits 'X' and 'i')")

    for tid, track in tracks.items():
        here = f"{where}: tid {tid}"
        # Slices on one track must properly nest: partial overlap would
        # mean one task executing twice at once.
        slices = sorted(track["slices"])
        for (ts_a, dur_a), (ts_b, dur_b) in zip(slices, slices[1:]):
            if ts_b < ts_a + dur_a and ts_b + dur_b > ts_a + dur_a:
                fail(path, f"{here}: slices [{ts_a},{ts_a + dur_a}] and "
                           f"[{ts_b},{ts_b + dur_b}] partially overlap")
        # Monotonic lifecycle: submit <= ready <= first execution start;
        # the delayed release point cannot precede the submit. (The ring
        # evicts oldest-first, so a kind may be absent — only orderings
        # whose both sides survived are judged.)
        inst = track["instants"]
        first_submit = min(inst.get("submit", [])) if "submit" in inst else None
        if first_submit is not None:
            for kind in ("delayed", "ready"):
                for ts in inst.get(kind, []):
                    if ts < first_submit:
                        fail(path, f"{here}: {kind} at {ts} precedes "
                                   f"submit at {first_submit}")
            for ts, _ in slices:
                if ts < first_submit:
                    fail(path, f"{here}: start at {ts} precedes "
                               f"submit at {first_submit}")
        for ready in inst.get("ready", []):
            if slices and ready > max(ts + dur for ts, dur in slices):
                fail(path, f"{here}: ready at {ready} after the last "
                           "execution finished")
    n = len(events)
    return n


def check_flight_record(path, doc):
    reason = doc.get("reason")
    if not isinstance(reason, str) or not reason:
        fail(path, "flight record 'reason' is not a non-empty string")
    wall = doc.get("wall_micros")
    if not isinstance(wall, int) or wall < 0:
        fail(path, "flight record 'wall_micros' is not a non-negative int")
    if "verdict" not in doc:
        fail(path, "flight record missing 'verdict' (null when none)")
    verdict = doc["verdict"]
    if verdict is not None:
        if not isinstance(verdict, dict):
            fail(path, "flight record 'verdict' is neither null nor object")
        if verdict.get("state") not in ("ok", "warn", "shed"):
            fail(path, f"flight record verdict state "
                       f"{verdict.get('state')!r} invalid")
    trace = doc.get("trace")
    if not isinstance(trace, dict):
        fail(path, "flight record 'trace' is not an object")
    n = check_chrome_trace(path, trace, where="$.trace")
    metrics = doc.get("metrics")
    check_registry_snapshot(path, metrics, "$.metrics")
    return n


def check_file(path, f=None):
    doc = load_strict(path, f if f is not None else open(path))
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if "reason" in doc or "metrics" in doc:
        n = check_flight_record(path, doc)
        print(f"{path}: ok (flight record, {n} trace events)")
    else:
        n = check_chrome_trace(path, doc)
        print(f"{path}: ok (chrome trace, {n} trace events)")


# --- self-test ---------------------------------------------------------------

_GOOD_TRACE = """{
  "displayTimeUnit": "ms",
  "traceEvents": [
    {"name": "work", "cat": "task", "ph": "X", "ts": 10, "dur": 20,
     "pid": 1, "tid": 7, "args": {"id": 7, "trace_id": 3, "wall_ts": 1}},
    {"name": "submit:work", "cat": "lifecycle", "ph": "i", "ts": 2,
     "pid": 1, "tid": 7, "s": "t",
     "args": {"id": 7, "trace_id": 3, "wall_ts": 0}},
    {"name": "ready", "cat": "lifecycle", "ph": "i", "ts": 9,
     "pid": 1, "tid": 7, "s": "t",
     "args": {"id": 7, "trace_id": 3, "wall_ts": 1}},
    {"name": "commit", "cat": "lifecycle", "ph": "i", "ts": 29,
     "pid": 1, "tid": 101, "s": "t",
     "args": {"id": 101, "trace_id": 3, "wall_ts": 2}}
  ]
}"""

_GOOD_FLIGHT = """{
  "reason": "invariant (d): shadow mismatch",
  "wall_micros": 1234,
  "verdict": {"state": "shed"},
  "trace": %s,
  "metrics": {
    "counters": {"txn.commits": 3},
    "gauges": {"trace.dropped_events": 0},
    "histograms": {"task.run_us": {"count": 1, "sum": 5, "min": 5,
                                   "max": 5, "mean": 5, "p50": 5,
                                   "p95": 5, "p99": 5,
                                   "buckets": [[10, 1]]}}
  }
}""" % _GOOD_TRACE

_BAD_TRACES = {
    "ready precedes submit": _GOOD_TRACE.replace('"ts": 9', '"ts": 1'),
    "start precedes submit": _GOOD_TRACE.replace('"ts": 10', '"ts": 1'),
    "zero duration slice": _GOOD_TRACE.replace('"dur": 20', '"dur": 0'),
    "missing trace_id": _GOOD_TRACE.replace(
        '"args": {"id": 7, "trace_id": 3, "wall_ts": 1}},\n    {"name": "submit:work"',
        '"args": {"id": 7}},\n    {"name": "submit:work"'),
    "unknown phase": _GOOD_TRACE.replace('"ph": "X"', '"ph": "B"'),
    "instant without scope": _GOOD_TRACE.replace(
        '"ts": 29,\n     "pid": 1, "tid": 101, "s": "t"',
        '"ts": 29,\n     "pid": 1, "tid": 101'),
    "partial slice overlap": _GOOD_TRACE.replace(
        '{"name": "ready"',
        """{"name": "work", "cat": "task", "ph": "X", "ts": 15, "dur": 20,
     "pid": 1, "tid": 7, "args": {"id": 7, "trace_id": 3, "wall_ts": 1}},
    {"name": "ready\"""", 1),
}

_BAD_FLIGHTS = {
    "empty reason": _GOOD_FLIGHT.replace(
        '"invariant (d): shadow mismatch"', '""'),
    "invalid verdict state": _GOOD_FLIGHT.replace(
        '{"state": "shed"}', '{"state": "panic"}'),
    "negative wall clock": _GOOD_FLIGHT.replace(
        '"wall_micros": 1234', '"wall_micros": -1'),
    "histogram bucket mismatch": _GOOD_FLIGHT.replace(
        '"buckets": [[10, 1]]', '"buckets": [[10, 7]]'),
}


def self_test():
    import io

    check_file("<good trace>", io.StringIO(_GOOD_TRACE))
    check_file("<good flight>", io.StringIO(_GOOD_FLIGHT))

    accepted = []
    for name, doc in {**_BAD_TRACES, **_BAD_FLIGHTS}.items():
        try:
            check_file(f"<bad: {name}>", io.StringIO(doc))
            accepted.append(name)
        except SystemExit as e:
            print(f"rejected as expected [{name}]: {e}")
    if accepted:
        sys.exit(f"self-test FAILED: accepted bad documents: {accepted}")
    print("self-test: ok")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    if argv[1] == "--self-test":
        self_test()
        return 0
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
