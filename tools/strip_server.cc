// strip_server: the network front-end binary (DESIGN.md §2.6).
//
//   strip_server --data-dir=/var/lib/strip [--port=7433] [--workers=4]
//                [--delay=0.5] [--staleness-slo-us=N] [--queue-slo-us=N]
//                [--watchdog-period=0.25] [--checkpoint-wal-bytes=N]
//
// Serves the built-in demo schema: a `quotes` feed table (symbol, price)
// and a `quote_stats` materialized view (sum/count per symbol) maintained
// incrementally by generated delta rules with a batching delay window —
// the paper's feed -> rule -> derived-data pipeline behind a socket.
//
// Prints "LISTENING <port>" once accepting; stops on Admin kShutdown.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "strip/net/server.h"
#include "strip/viewmaint/rule_gen.h"

namespace {

constexpr const char* kDemoSchema = R"(
  create table quotes (symbol string, price double);
  create index on quotes (symbol);
  create materialized view quote_stats as
    select symbol, sum(price) as total, count(*) as n
    from quotes group by symbol;
)";

struct Flags {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string data_dir;
  int workers = 4;
  double delay_seconds = 0.2;
  int64_t staleness_slo_us = 0;
  int64_t queue_slo_us = 0;
  double watchdog_period = 0.25;
  uint64_t checkpoint_wal_bytes = 0;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--host", &v)) {
      flags.host = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      flags.port = static_cast<uint16_t>(std::atoi(v));
    } else if (ParseFlag(argv[i], "--data-dir", &v)) {
      flags.data_dir = v;
    } else if (ParseFlag(argv[i], "--workers", &v)) {
      flags.workers = std::atoi(v);
    } else if (ParseFlag(argv[i], "--delay", &v)) {
      flags.delay_seconds = std::atof(v);
    } else if (ParseFlag(argv[i], "--staleness-slo-us", &v)) {
      flags.staleness_slo_us = std::atoll(v);
    } else if (ParseFlag(argv[i], "--queue-slo-us", &v)) {
      flags.queue_slo_us = std::atoll(v);
    } else if (ParseFlag(argv[i], "--watchdog-period", &v)) {
      flags.watchdog_period = std::atof(v);
    } else if (ParseFlag(argv[i], "--checkpoint-wal-bytes", &v)) {
      flags.checkpoint_wal_bytes =
          static_cast<uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host=H] [--port=N] [--data-dir=DIR] "
                   "[--workers=N] [--delay=S] [--staleness-slo-us=N] "
                   "[--queue-slo-us=N] [--watchdog-period=S] "
                   "[--checkpoint-wal-bytes=N]\n",
                   argv[0]);
      return 2;
    }
  }

  strip::ServerOptions options;
  options.host = flags.host;
  options.port = flags.port;
  options.data_dir = flags.data_dir;
  options.schema_sql = kDemoSchema;
  options.feed_tables = {"quotes"};
  options.engine.num_workers = flags.workers;
  options.checkpoint_wal_bytes = flags.checkpoint_wal_bytes;
  options.slo.staleness_p99_us = flags.staleness_slo_us;
  options.slo.queue_wait_p99_us = flags.queue_slo_us;
  options.watchdog_period_seconds = flags.watchdog_period;
  double delay = flags.delay_seconds;
  options.bootstrap = [delay](strip::Database& db) -> strip::Status {
    strip::RuleGenOptions gen;
    gen.delay_seconds = delay;
    STRIP_ASSIGN_OR_RETURN(
        strip::GeneratedRule rule,
        strip::GenerateMaintenanceRule(db, "quote_stats", "quotes", gen));
    (void)rule;
    return strip::Status::OK();
  };

  auto server = strip::Server::Start(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "strip_server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", static_cast<unsigned>((*server)->port()));
  std::fflush(stdout);
  (*server)->Wait();
  (*server)->Stop();
  std::printf("STOPPED\n");
  return 0;
}
