#!/usr/bin/env bash
# Crash-recovery smoke test for strip_server (DESIGN.md §2.6).
#
# Exercises the real durability path across process death, twice:
#
#   1. WAL-only recovery: load the server, dump its state, kill -9 the
#      process, restart on the same data dir, dump again. The two dumps
#      must be byte-identical — every acknowledged batch survived.
#   2. Snapshot + tail recovery: checkpoint, append more load, kill -9,
#      restart (now snapshot load + WAL tail replay), and compare dumps
#      the same way.
#
# The dump oracle is `strip_client_swarm --dump`: it drains the server so
# the dump covers the full rule cascade of every acknowledged batch, then
# prints `quotes` and `quote_stats` as sorted TSV.
#
# Usage: tools/server_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/strip_server"
SWARM="$BUILD_DIR/tools/strip_client_swarm"

for bin in "$SERVER" "$SWARM"; do
  if [[ ! -x "$bin" ]]; then
    echo "server_smoke: missing binary $bin (build first)" >&2
    exit 2
  fi
done

WORK="$(mktemp -d "${TMPDIR:-/tmp}/strip_smoke.XXXXXX")"
DATA="$WORK/data"
mkdir -p "$DATA"
SERVER_PID=""
PORT=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

start_server() {
  : >"$WORK/server.log"
  # --port=0 binds an ephemeral port; the server prints "LISTENING <port>".
  "$SERVER" --port=0 --data-dir="$DATA" --delay=0.05 --workers=2 \
    >"$WORK/server.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(awk '/^LISTENING/ {print $2; exit}' "$WORK/server.log")"
    [[ -n "$PORT" ]] && return 0
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
      echo "server_smoke: server exited during startup:" >&2
      cat "$WORK/server.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "server_smoke: server never printed LISTENING:" >&2
  cat "$WORK/server.log" >&2
  exit 1
}

kill_dash_nine() {
  # kill -9 by the saved PID — a crash, not a shutdown. The server gets no
  # chance to checkpoint; recovery must come from what is on disk.
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

load() {
  "$SWARM" --port="$PORT" --clients=4 --seconds="$1" --batch=8 --symbols=16 \
    >"$WORK/swarm.log" 2>&1
}

dump() {
  "$SWARM" --port="$PORT" --dump >"$1"
  if ! grep -q '^== ' "$1"; then
    echo "server_smoke: dump $1 looks empty" >&2
    exit 1
  fi
}

compare() {
  if ! diff -u "$1" "$2" >"$WORK/dump.diff"; then
    echo "server_smoke: recovered state differs from pre-crash state:" >&2
    cat "$WORK/dump.diff" >&2
    exit 1
  fi
}

# --- Phase 1: WAL-only recovery across kill -9 -------------------------------
echo "server_smoke: phase 1 — WAL replay after kill -9"
start_server
load 2
dump "$WORK/pre_crash.tsv"
kill_dash_nine

start_server
dump "$WORK/post_crash.tsv"
compare "$WORK/pre_crash.tsv" "$WORK/post_crash.tsv"
echo "server_smoke: phase 1 ok — dumps byte-identical"

# --- Phase 2: snapshot + WAL-tail recovery across kill -9 --------------------
echo "server_smoke: phase 2 — snapshot + tail replay after kill -9"
"$SWARM" --port="$PORT" --checkpoint >"$WORK/checkpoint.log" 2>&1
load 1
dump "$WORK/pre_crash2.tsv"
kill_dash_nine

start_server
if [[ ! -f "$DATA/state.snap" ]]; then
  echo "server_smoke: checkpoint left no $DATA/state.snap" >&2
  exit 1
fi
dump "$WORK/post_crash2.tsv"
compare "$WORK/pre_crash2.tsv" "$WORK/post_crash2.tsv"
echo "server_smoke: phase 2 ok — dumps byte-identical"

# --- Graceful shutdown -------------------------------------------------------
"$SWARM" --port="$PORT" --shutdown >/dev/null 2>&1 || true
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "server_smoke: server ignored shutdown request" >&2
  exit 1
fi
SERVER_PID=""
echo "server_smoke: PASS"
