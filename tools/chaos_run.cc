// Seeded chaos runner (DESIGN.md §9): runs the deterministic fault-
// injection workload for one or more seeds, optionally shrinking a
// failing seed to its minimal form. The nightly CI chaos step drives this
// under ASan / TSan with random seeds; tools/replay_seed.sh re-runs a
// failing seed locally.
//
//   chaos_run --seed N [--events E] [--syms S] [--shrink] [--verbose]
//   chaos_run --seeds N,M,K            # several seeds, stop at first fail
//   chaos_run --seed N --flight-record=PATH   # dump trace+metrics on fail
//   chaos_run --seed N --plant-failure=STEP   # force a failure at STEP
//   chaos_run --seed N --cluster=SHARDS       # sharded run, invariant (g)
//
// --cluster=SHARDS routes the feed across SHARDS simulated shard engines
// behind the symbol-hash router, with two-tier view maintenance shipping
// folded deltas to a merge engine; at quiescence the merged composite view
// must equal a recompute over the union of shard tables (invariant g).
// --shrink is single-engine only and is ignored with --cluster.
//
// --plant-failure corrupts the derived table after STEP executor steps so
// the invariant suite must trip; combined with --flight-record it produces
// a known-good flight-recorder dump (the CI observability smoke validates
// one with tools/validate_trace.py). A planted run exits 1 by design.
//
// Exit code: 0 = all seeds passed, 1 = a seed failed (the reproducer and
// its shrunken form are printed to stderr).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "strip/testing/chaos.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: chaos_run --seed N | --seeds N,M,K\n"
               "                 [--events E] [--syms S] [--shrink]\n"
               "                 [--verbose] [--flight-record=PATH]\n"
               "                 [--plant-failure=STEP] [--cluster=SHARDS]\n");
  std::exit(2);
}

std::vector<uint64_t> ParseSeeds(const char* arg) {
  std::vector<uint64_t> seeds;
  std::string s(arg);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    seeds.push_back(std::strtoull(s.substr(pos, comma - pos).c_str(),
                                  nullptr, 0));
    pos = comma + 1;
  }
  if (seeds.empty()) Usage();
  return seeds;
}

void PrintReport(const strip::ChaosReport& r) {
  std::printf("  steps=%llu tasks=%llu feed=%llu applied=%llu "
              "rule_tasks=%llu merged=%llu wait_die=%llu deltas=%llu\n",
              static_cast<unsigned long long>(r.steps),
              static_cast<unsigned long long>(r.tasks_run),
              static_cast<unsigned long long>(r.feed_events),
              static_cast<unsigned long long>(r.applied_updates),
              static_cast<unsigned long long>(r.rule_tasks_created),
              static_cast<unsigned long long>(r.firings_merged),
              static_cast<unsigned long long>(r.wait_die_aborts),
              static_cast<unsigned long long>(r.deltas_shipped));
  std::printf("  injected: lock_aborts=%llu stalls=%llu delays=%llu "
              "costs=%llu\n",
              static_cast<unsigned long long>(r.injected.lock_aborts),
              static_cast<unsigned long long>(r.injected.stalls),
              static_cast<unsigned long long>(r.injected.extra_delays),
              static_cast<unsigned long long>(r.injected.costs_assigned));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<uint64_t> seeds;
  strip::ChaosOptions base;
  bool shrink = false;
  bool verbose = false;
  int cluster_shards = 0;  // 0 = single-engine RunChaos

  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seeds.push_back(std::strtoull(argv[++i], nullptr, 0));
    } else if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      seeds = ParseSeeds(argv[++i]);
    } else if (!std::strcmp(argv[i], "--events") && i + 1 < argc) {
      base.num_events = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--syms") && i + 1 < argc) {
      base.num_syms = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--shrink")) {
      shrink = true;
    } else if (!std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else if (!std::strncmp(argv[i], "--flight-record=", 16)) {
      base.flight_record_path = argv[i] + 16;
    } else if (!std::strncmp(argv[i], "--plant-failure=", 16)) {
      base.plant_failure_at_step =
          std::strtoull(argv[i] + 16, nullptr, 0);
    } else if (!std::strncmp(argv[i], "--cluster=", 10)) {
      cluster_shards = std::atoi(argv[i] + 10);
      if (cluster_shards < 1) Usage();
    } else {
      Usage();
    }
  }
  if (seeds.empty()) Usage();

  for (uint64_t seed : seeds) {
    strip::ChaosOptions o = base;
    o.seed = seed;
    if (cluster_shards > 0) {
      std::printf("chaos seed %llu (%d events, %d syms, %d shards) ... ",
                  static_cast<unsigned long long>(seed), o.num_events,
                  o.num_syms, cluster_shards);
    } else {
      std::printf("chaos seed %llu (%d events, %d syms) ... ",
                  static_cast<unsigned long long>(seed), o.num_events,
                  o.num_syms);
    }
    std::fflush(stdout);
    strip::ChaosReport r = cluster_shards > 0
                               ? strip::RunClusterChaos(o, cluster_shards)
                               : strip::RunChaos(o);
    std::printf("%s\n", r.ok ? "ok" : "FAIL");
    if (verbose || !r.ok) PrintReport(r);
    if (r.ok) continue;

    std::fprintf(stderr, "chaos FAILURE: %s\n", r.failure.c_str());
    if (cluster_shards > 0) {
      std::fprintf(stderr, "reproduce: chaos_run --seed %llu --events %d "
                           "--syms %d --cluster=%d\n",
                   static_cast<unsigned long long>(seed), o.num_events,
                   o.num_syms, cluster_shards);
      return 1;  // the shrinker is single-engine only
    }
    std::fprintf(stderr, "reproduce: chaos_run --seed %llu --events %d "
                         "--syms %d\n",
                 static_cast<unsigned long long>(seed), o.num_events,
                 o.num_syms);
    if (shrink) {
      std::fprintf(stderr, "shrinking...\n");
      strip::ShrinkResult s = strip::ShrinkFailure(o);
      std::fprintf(stderr, "%s", s.trail.c_str());
      std::fprintf(stderr,
                   "minimal: chaos_run --seed %llu --events %d --syms %d\n"
                   "minimal failure: %s\n",
                   static_cast<unsigned long long>(s.options.seed),
                   s.options.num_events, s.options.num_syms,
                   s.report.failure.c_str());
    }
    return 1;
  }
  return 0;
}
