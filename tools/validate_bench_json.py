#!/usr/bin/env python3
"""Validate exported observability JSON against its expected schema.

Three modes:

  validate_bench_json.py BENCH_foo.json [...]
      Checks the canonical BenchReport schema every bench binary emits:
      {"name": str, "repo_rev": str, "config": obj, "metrics": obj}.
      Any embedded metrics-registry snapshot (a "registry" value) is
      checked recursively: counters/gauges/histograms with well-formed
      histogram summaries and sparse bucket lists.

  validate_bench_json.py --trace trace.json [...]
      Checks Chrome trace_event JSON as written by TraceRing.ToChromeJson
      / the shell's .trace command: displayTimeUnit plus a traceEvents
      list of "X" slices (with dur) and "i" instants.

  validate_bench_json.py --self-test
      Runs the validator against embedded good and bad documents; exits
      non-zero if a bad document slips through or a good one is rejected.

Every mode rejects NaN / Infinity (both the bare JSON literals and
overflow spellings like 1e999), negative counters, and negative bucket
counts: a metric that went non-finite or negative is a bug in the
producer, not a value to chart.

Exits non-zero with a message on the first violation. Used by the CI
observability smoke step; runnable locally on any checked-in BENCH file.
"""

import json
import math
import sys


def fail(path, msg):
    sys.exit(f"{path}: {msg}")


def _reject_constant(const):
    # json calls this for the literals NaN / Infinity / -Infinity.
    raise ValueError(f"non-finite JSON literal {const!r}")


def load_strict(path, f):
    """json.load that rejects NaN/Infinity literals AND overflow floats
    (the parser turns '1e999' into inf without consulting parse_constant)."""
    try:
        doc = json.load(f, parse_constant=_reject_constant)
    except ValueError as e:
        fail(path, f"invalid JSON: {e}")

    def scan(node, where):
        if isinstance(node, float) and not math.isfinite(node):
            fail(path, f"{where}: non-finite number")
        elif isinstance(node, dict):
            for k, v in node.items():
                scan(v, f"{where}.{k}")
        elif isinstance(node, list):
            for i, v in enumerate(node):
                scan(v, f"{where}[{i}]")

    scan(doc, "$")
    return doc


def check_registry_snapshot(path, snap, where):
    if not isinstance(snap, dict):
        fail(path, f"{where}: registry snapshot is not an object")
    if not snap:  # "{}" when metrics were disabled for the run
        return
    if "merge" in snap and "counters" not in snap:
        # Cluster snapshot (Cluster::MetricsJson): per-engine registries
        # keyed "shard0".."shardN-1" and "merge", plus cluster counters.
        for k, v in snap.items():
            if k == "merge" or k.startswith("shard"):
                check_registry_snapshot(path, v, f"{where}.{k}")
            elif not isinstance(v, int) or v < 0:
                fail(path, f"{where}: cluster counter '{k}' is not a "
                           "non-negative int")
        return
    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            fail(path, f"{where}: snapshot missing '{section}'")
        if not isinstance(snap[section], dict):
            fail(path, f"{where}: '{section}' is not an object")
    for name, v in snap["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"{where}: counter '{name}' is not a non-negative int")
    for name, v in snap["gauges"].items():
        if not isinstance(v, (int, float)) or not math.isfinite(v):
            fail(path, f"{where}: gauge '{name}' is not a finite number")
    for name, h in snap["histograms"].items():
        for field in ("count", "sum", "min", "max", "mean",
                      "p50", "p95", "p99", "buckets"):
            if field not in h:
                fail(path, f"{where}: histogram '{name}' missing '{field}'")
        if not isinstance(h["count"], int) or h["count"] < 0:
            fail(path, f"{where}: histogram '{name}' count is not a "
                       "non-negative int")
        for field in ("sum", "min", "max", "mean", "p50", "p95", "p99"):
            v = h[field]
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                fail(path, f"{where}: histogram '{name}' field '{field}' "
                           "is not a finite number")
        total = 0
        for bucket in h["buckets"]:
            if (not isinstance(bucket, list) or len(bucket) != 2
                    or not (bucket[0] is None or isinstance(bucket[0], int))
                    or not isinstance(bucket[1], int)):
                fail(path, f"{where}: histogram '{name}' has a malformed "
                           f"bucket {bucket!r} (want [bound|null, count])")
            if bucket[1] < 0:
                fail(path, f"{where}: histogram '{name}' bucket {bucket!r} "
                           "has a negative count")
            total += bucket[1]
        if total != h["count"]:
            fail(path, f"{where}: histogram '{name}' bucket counts sum to "
                       f"{total}, expected count={h['count']}")


def find_registries(node, where="metrics"):
    """Yields every {"registry": ...} value nested in the metrics section."""
    if isinstance(node, dict):
        for k, v in node.items():
            if k == "registry":
                yield where, v
            else:
                yield from find_registries(v, f"{where}.{k}")
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from find_registries(v, f"{where}[{i}]")


#: Per-rule breakdown histogram families the observability bench must
#: populate (at least one non-empty histogram per prefix).
_RULE_BREAKDOWN_PREFIXES = ("rules.queue_wait_us.", "rules.lock_wait_us.",
                            "rules.exec_us.")

_WATCHDOG_STATES = ("ok", "warn", "shed")


def check_observability(path, metrics):
    """Extra checks for BENCH_observability.json: the burst-overload
    watchdog timeline must show the full ok -> shed -> ok cycle, the
    post-burst registry must carry the per-rule breakdown histograms, and
    the tracing-overhead A/B must be present and sane."""
    burst = metrics.get("burst_overload")
    if not isinstance(burst, dict):
        fail(path, "metrics missing 'burst_overload' object")
    for flag in ("reached_shed", "recovered"):
        if burst.get(flag) is not True:
            fail(path, f"burst_overload.{flag} is not true — the scenario "
                       "did not demonstrate the ok->shed->ok cycle")
    timeline = burst.get("timeline")
    if not isinstance(timeline, list) or not timeline:
        fail(path, "burst_overload.timeline is not a non-empty list")
    for i, entry in enumerate(timeline):
        where = f"burst_overload.timeline[{i}]"
        if not isinstance(entry.get("phase"), str):
            fail(path, f"{where}: missing 'phase'")
        if entry.get("state") not in _WATCHDOG_STATES:
            fail(path, f"{where}: state {entry.get('state')!r} invalid")
        if not isinstance(entry.get("verdict"), dict):
            fail(path, f"{where}: 'verdict' is not an object")
    if not any(e["state"] == "shed" for e in timeline):
        fail(path, "burst_overload.timeline never reaches 'shed'")
    if timeline[-1]["state"] != "ok":
        fail(path, "burst_overload.timeline does not end at 'ok'")
    registry = burst.get("registry")
    if not isinstance(registry, dict) or "histograms" not in registry:
        fail(path, "burst_overload.registry has no histograms")
    hists = registry["histograms"]
    for prefix in _RULE_BREAKDOWN_PREFIXES:
        populated = [n for n in hists
                     if n.startswith(prefix) and hists[n].get("count", 0) > 0]
        if not populated:
            fail(path, f"no populated per-rule histogram under '{prefix}'")
    overhead = metrics.get("tracing_overhead")
    if not isinstance(overhead, dict):
        fail(path, "metrics missing 'tracing_overhead' object")
    for field in ("wall_seconds_metrics", "wall_seconds_no_metrics",
                  "overhead_fraction"):
        v = overhead.get(field)
        if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
            fail(path, f"tracing_overhead.{field} is not a non-negative "
                       "finite number")


def check_sharded(path, metrics):
    """Extra checks for BENCH_sharded_pta.json: every configuration's run
    entry must show an intact delta pipeline (no dropped shipments) and a
    merged view verified against the single-engine replay, and the headline
    shard-speedup fields must be present and finite."""
    runs = metrics.get("runs")
    if not isinstance(runs, list) or not runs:
        fail(path, "metrics.runs is not a non-empty list")
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            fail(path, f"{where}: not an object")
        for field in ("shards", "firings", "deltas_shipped"):
            v = run.get(field)
            if not isinstance(v, int) or v < 0:
                fail(path, f"{where}: '{field}' is not a non-negative int")
        if run["shards"] < 1:
            fail(path, f"{where}: 'shards' must be >= 1")
        fps = run.get("firings_per_second")
        if not isinstance(fps, (int, float)) or not math.isfinite(fps) \
                or fps < 0:
            fail(path, f"{where}: 'firings_per_second' is not a "
                       "non-negative finite number")
        if run.get("staging_failed") != 0:
            fail(path, f"{where}: staging_failed is not 0 — delta "
                       "shipments were dropped on the shard->merge boundary")
        if run.get("matches_single_engine") is not True:
            fail(path, f"{where}: matches_single_engine is not true — the "
                       "merged view was not verified against the "
                       "single-engine replay")
    speedup = metrics.get("speedup_4_shards_vs_1")
    if not isinstance(speedup, (int, float)) or not math.isfinite(speedup) \
            or speedup < 0:
        fail(path, "metrics.speedup_4_shards_vs_1 is not a non-negative "
                   "finite number")
    if not isinstance(metrics.get("meets_3x_target"), bool):
        fail(path, "metrics.meets_3x_target is not a bool")


def check_server(path, metrics):
    """Extra checks for BENCH_server.json: the client-observed latency
    percentiles must be present and ordered, the admission-control block
    must show the shed path was actually exercised, the health probe must
    report a valid watchdog state, and the registry must carry populated
    per-rule staleness histograms (the metric the watchdog sheds on)."""
    client = metrics.get("client")
    if not isinstance(client, dict):
        fail(path, "metrics missing 'client' object")
    for field in ("ops", "feed_batches", "feed_records", "execs", "errors",
                  "last_lsn"):
        v = client.get(field)
        if not isinstance(v, int) or v < 0:
            fail(path, f"client.{field} is not a non-negative int")
    if client["ops"] < 1:
        fail(path, "client.ops is 0 — the swarm did no work")
    pcts = []
    for field in ("p50_us", "p95_us", "p99_us"):
        v = client.get(field)
        if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
            fail(path, f"client.{field} is not a non-negative finite number")
        pcts.append(v)
    if not (pcts[0] <= pcts[1] <= pcts[2]):
        fail(path, "client latency percentiles are not monotone "
                   f"(p50={pcts[0]}, p95={pcts[1]}, p99={pcts[2]})")

    shed = metrics.get("shed")
    if not isinstance(shed, dict):
        fail(path, "metrics missing 'shed' object")
    for field in ("requests_shed", "sessions_refused",
                  "overload_batches_admitted"):
        v = shed.get(field)
        if not isinstance(v, int) or v < 0:
            fail(path, f"shed.{field} is not a non-negative int")
    if shed.get("exercised") is not True:
        fail(path, "shed.exercised is not true — the run never drove the "
                   "server into admission control")
    if shed["requests_shed"] + shed["sessions_refused"] < 1:
        fail(path, "shed.exercised is true but nothing was actually shed")

    health = metrics.get("health")
    if not isinstance(health, dict):
        fail(path, "metrics missing 'health' object")
    if health.get("state") not in _WATCHDOG_STATES:
        fail(path, f"health.state {health.get('state')!r} invalid")
    if not isinstance(health.get("watchdog"), bool):
        fail(path, "health.watchdog is not a bool")

    registry = metrics.get("registry")
    if not isinstance(registry, dict) or "histograms" not in registry:
        fail(path, "metrics.registry has no histograms")
    hists = registry["histograms"]
    stale = [n for n in hists if n.startswith("rules.staleness_us.")
             and hists[n].get("count", 0) > 0]
    if not stale:
        fail(path, "no populated per-rule histogram under "
                   "'rules.staleness_us.' — the watchdog had nothing "
                   "to judge")
    if hists.get("server.request_us", {}).get("count", 0) < 1:
        fail(path, "server.request_us histogram is empty")


def check_bench(path, f=None):
    doc = load_strict(path, f if f is not None else open(path))
    for field, want in (("name", str), ("repo_rev", str),
                        ("config", dict), ("metrics", dict)):
        if field not in doc:
            fail(path, f"missing top-level '{field}'")
        if not isinstance(doc[field], want):
            fail(path, f"'{field}' is not a {want.__name__}")
    if not doc["name"]:
        fail(path, "'name' is empty")
    for where, snap in find_registries(doc["metrics"]):
        check_registry_snapshot(path, snap, where)
    if doc["name"] == "observability":
        check_observability(path, doc["metrics"])
    if doc["name"] == "sharded_pta":
        check_sharded(path, doc["metrics"])
    if doc["name"] == "server":
        check_server(path, doc["metrics"])
    print(f"{path}: ok (name={doc['name']}, rev={doc['repo_rev'][:12]})")


def check_trace(path, f=None):
    doc = load_strict(path, f if f is not None else open(path))
    if doc.get("displayTimeUnit") != "ms":
        fail(path, "missing displayTimeUnit 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "'traceEvents' is not a list")
    for i, e in enumerate(events):
        for field in ("name", "cat", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail(path, f"traceEvents[{i}] missing '{field}'")
        if e["ph"] not in ("X", "i"):
            fail(path, f"traceEvents[{i}] has phase {e['ph']!r} "
                       "(TraceRing only emits 'X' and 'i')")
        if e["ph"] == "X" and ("dur" not in e or e["dur"] < 1):
            fail(path, f"traceEvents[{i}] 'X' slice without positive dur")
        if e["ph"] == "i" and e.get("s") != "t":
            fail(path, f"traceEvents[{i}] instant without scope 's':'t'")
    print(f"{path}: ok ({len(events)} trace events)")


# --- self-test ---------------------------------------------------------------

_GOOD_BENCH = """{
  "name": "bench", "repo_rev": "deadbeef", "config": {},
  "metrics": {"registry": {
    "counters": {"c": 3},
    "gauges": {"g": 1.5},
    "histograms": {"h": {"count": 2, "sum": 3, "min": 1, "max": 2,
                         "mean": 1.5, "p50": 1, "p95": 2, "p99": 2,
                         "buckets": [[1, 1], [null, 1]]}}
  }}
}"""

_BAD_BENCHES = {
    "NaN literal": _GOOD_BENCH.replace('"g": 1.5', '"g": NaN'),
    "Infinity literal": _GOOD_BENCH.replace('"g": 1.5', '"g": Infinity'),
    "overflow float": _GOOD_BENCH.replace('"g": 1.5', '"g": 1e999'),
    "negative counter": _GOOD_BENCH.replace('"c": 3', '"c": -3'),
    "negative bucket count": _GOOD_BENCH.replace('[1, 1]', '[1, -1]'),
    "negative histogram count":
        _GOOD_BENCH.replace('"count": 2', '"count": -2'),
    "bucket sum mismatch": _GOOD_BENCH.replace('[1, 1]', '[1, 5]'),
}

_OBS_HIST = ('{"count": 1, "sum": 5, "min": 5, "max": 5, "mean": 5, '
             '"p50": 5, "p95": 5, "p99": 5, "buckets": [[10, 1]]}')

_GOOD_OBS_BENCH = """{
  "name": "observability", "repo_rev": "deadbeef", "config": {},
  "metrics": {
    "burst_overload": {
      "reached_shed": true, "recovered": true,
      "timeline": [
        {"phase": "baseline", "state": "ok", "verdict": {"state": "ok"}},
        {"phase": "burst", "state": "shed", "verdict": {"state": "shed"}},
        {"phase": "drain", "state": "ok", "verdict": {"state": "ok"}}
      ],
      "registry": {
        "counters": {}, "gauges": {},
        "histograms": {
          "rules.queue_wait_us.track": %s,
          "rules.lock_wait_us.track": %s,
          "rules.exec_us.track": %s
        }
      }
    },
    "tracing_overhead": {"wall_seconds_metrics": 0.5,
                         "wall_seconds_no_metrics": 0.49,
                         "overhead_fraction": 0.02,
                         "meets_5pct_target": true}
  }
}""" % (_OBS_HIST, _OBS_HIST, _OBS_HIST)

_GOOD_SHARDED_BENCH = """{
  "name": "sharded_pta", "repo_rev": "deadbeef", "config": {},
  "metrics": {
    "runs": [
      {"shards": 1, "workers": 4, "firings": 100,
       "firings_per_second": 50.0, "deltas_shipped": 20,
       "staging_failed": 0, "matches_single_engine": true,
       "registry": {}},
      {"shards": 4, "workers": 4, "firings": 100,
       "firings_per_second": 175.0, "deltas_shipped": 60,
       "staging_failed": 0, "matches_single_engine": true,
       "registry": {"num_shards": 4, "deltas_shipped": 60,
                    "shard0": {"counters": {"c": 1}, "gauges": {},
                               "histograms": {}},
                    "merge": {"counters": {}, "gauges": {},
                              "histograms": {}}}}
    ],
    "speedup_4_shards_vs_1": 3.5,
    "meets_3x_target": true
  }
}"""

_BAD_SHARDED_BENCHES = {
    "dropped shipment": _GOOD_SHARDED_BENCH.replace(
        '"staging_failed": 0, "matches_single_engine": true,\n'
        '       "registry": {}},', '"staging_failed": 2, '
        '"matches_single_engine": true,\n       "registry": {}},', 1),
    "unverified merge": _GOOD_SHARDED_BENCH.replace(
        '"matches_single_engine": true', '"matches_single_engine": false',
        1),
    "zero shards": _GOOD_SHARDED_BENCH.replace('"shards": 1', '"shards": 0'),
    "missing speedup": _GOOD_SHARDED_BENCH.replace(
        '"speedup_4_shards_vs_1"', '"speedup_gone"'),
    "no target flag": _GOOD_SHARDED_BENCH.replace(
        '"meets_3x_target": true', '"meets_3x_target": "yes"'),
    "empty runs": _GOOD_SHARDED_BENCH.replace(
        '"runs": [', '"runs_gone": [').replace(
        '"speedup_4_shards_vs_1": 3.5',
        '"runs": [], "speedup_4_shards_vs_1": 3.5'),
    "bad shard sub-snapshot": _GOOD_SHARDED_BENCH.replace(
        '"shard0": {"counters": {"c": 1}',
        '"shard0": {"counters": {"c": -1}'),
    "bad cluster counter": _GOOD_SHARDED_BENCH.replace(
        '"num_shards": 4', '"num_shards": -4'),
}

_SERVER_HIST = ('{"count": 4, "sum": 40, "min": 5, "max": 15, "mean": 10, '
                '"p50": 10, "p95": 15, "p99": 15, "buckets": [[16, 4]]}')

_GOOD_SERVER_BENCH = """{
  "name": "server", "repo_rev": "deadbeef", "config": {"clients": 2},
  "metrics": {
    "client": {"ops": 100, "feed_batches": 60, "feed_records": 480,
               "execs": 40, "errors": 0, "p50_us": 900, "p95_us": 2000,
               "p99_us": 3000, "last_lsn": 480},
    "shed": {"requests_shed": 3, "sessions_refused": 7,
             "overload_batches_admitted": 0, "exercised": true},
    "health": {"state": "shed", "watchdog": true},
    "registry": {
      "counters": {"server.requests": 100}, "gauges": {},
      "histograms": {
        "rules.staleness_us.maintain_quote_stats": %s,
        "server.request_us": %s
      }
    }
  }
}""" % (_SERVER_HIST, _SERVER_HIST)

_BAD_SERVER_BENCHES = {
    "shed never exercised": _GOOD_SERVER_BENCH.replace(
        '"exercised": true', '"exercised": false'),
    "shed claims without counts": _GOOD_SERVER_BENCH.replace(
        '"requests_shed": 3, "sessions_refused": 7',
        '"requests_shed": 0, "sessions_refused": 0'),
    "latency inversion": _GOOD_SERVER_BENCH.replace(
        '"p50_us": 900', '"p50_us": 9000'),
    "zero ops": _GOOD_SERVER_BENCH.replace('"ops": 100', '"ops": 0'),
    "negative feed records": _GOOD_SERVER_BENCH.replace(
        '"feed_records": 480', '"feed_records": -1'),
    "invalid health state": _GOOD_SERVER_BENCH.replace(
        '"state": "shed"', '"state": "melted"'),
    "no staleness histogram": _GOOD_SERVER_BENCH.replace(
        '"rules.staleness_us.maintain_quote_stats"',
        '"rules.elsewhere_us.maintain_quote_stats"'),
    "empty request histogram": _GOOD_SERVER_BENCH.replace(
        '"server.request_us": {"count": 4',
        '"server.request_us": {"count": 0').replace(
        '"server.request_us": {"count": 0, "sum": 40, "min": 5, "max": 15, '
        '"mean": 10, "p50": 10, "p95": 15, "p99": 15, "buckets": [[16, 4]]}',
        '"server.request_us": {"count": 0, "sum": 0, "min": 0, "max": 0, '
        '"mean": 0, "p50": 0, "p95": 0, "p99": 0, "buckets": []}'),
}

_BAD_OBS_BENCHES = {
    "never sheds": _GOOD_OBS_BENCH.replace('"reached_shed": true',
                                           '"reached_shed": false'),
    "never recovers": _GOOD_OBS_BENCH.replace('"recovered": true',
                                              '"recovered": false'),
    "invalid timeline state": _GOOD_OBS_BENCH.replace(
        '"state": "shed", "verdict"', '"state": "panic", "verdict"'),
    "timeline ends shed": _GOOD_OBS_BENCH.replace(
        '{"phase": "drain", "state": "ok", "verdict": {"state": "ok"}}',
        '{"phase": "drain", "state": "shed", "verdict": {"state": "shed"}}'),
    "empty exec breakdown": _GOOD_OBS_BENCH.replace(
        '"rules.exec_us.track": {"count": 1',
        '"rules.exec_us.track": {"count": 0', 1).replace(
        '"rules.exec_us.track": {"count": 0, "sum": 5, "min": 5, "max": 5, '
        '"mean": 5, "p50": 5, "p95": 5, "p99": 5, "buckets": [[10, 1]]}',
        '"rules.exec_us.track": {"count": 0, "sum": 0, "min": 0, "max": 0, '
        '"mean": 0, "p50": 0, "p95": 0, "p99": 0, "buckets": []}'),
    "missing overhead": _GOOD_OBS_BENCH.replace(
        '"tracing_overhead"', '"tracing_overhead_gone"'),
    "negative overhead": _GOOD_OBS_BENCH.replace(
        '"overhead_fraction": 0.02', '"overhead_fraction": -0.02'),
}


def self_test():
    import io

    check_bench("<good>", io.StringIO(_GOOD_BENCH))
    check_bench("<good observability>", io.StringIO(_GOOD_OBS_BENCH))
    check_bench("<good sharded>", io.StringIO(_GOOD_SHARDED_BENCH))
    check_bench("<good server>", io.StringIO(_GOOD_SERVER_BENCH))

    accepted = []
    for name, doc in {**_BAD_BENCHES, **_BAD_OBS_BENCHES,
                      **_BAD_SHARDED_BENCHES,
                      **_BAD_SERVER_BENCHES}.items():
        try:
            check_bench(f"<bad: {name}>", io.StringIO(doc))
            accepted.append(name)
        except SystemExit as e:
            print(f"rejected as expected [{name}]: {e}")
    if accepted:
        sys.exit(f"self-test FAILED: accepted bad documents: {accepted}")
    print("self-test: ok")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    if argv[1] == "--self-test":
        self_test()
        return 0
    if argv[1] == "--trace":
        if len(argv) < 3:
            sys.exit("--trace requires at least one file")
        for path in argv[2:]:
            check_trace(path)
    else:
        for path in argv[1:]:
            check_bench(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
