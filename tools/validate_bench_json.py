#!/usr/bin/env python3
"""Validate exported observability JSON against its expected schema.

Three modes:

  validate_bench_json.py BENCH_foo.json [...]
      Checks the canonical BenchReport schema every bench binary emits:
      {"name": str, "repo_rev": str, "config": obj, "metrics": obj}.
      Any embedded metrics-registry snapshot (a "registry" value) is
      checked recursively: counters/gauges/histograms with well-formed
      histogram summaries and sparse bucket lists.

  validate_bench_json.py --trace trace.json [...]
      Checks Chrome trace_event JSON as written by TraceRing.ToChromeJson
      / the shell's .trace command: displayTimeUnit plus a traceEvents
      list of "X" slices (with dur) and "i" instants.

  validate_bench_json.py --self-test
      Runs the validator against embedded good and bad documents; exits
      non-zero if a bad document slips through or a good one is rejected.

Every mode rejects NaN / Infinity (both the bare JSON literals and
overflow spellings like 1e999), negative counters, and negative bucket
counts: a metric that went non-finite or negative is a bug in the
producer, not a value to chart.

Exits non-zero with a message on the first violation. Used by the CI
observability smoke step; runnable locally on any checked-in BENCH file.
"""

import json
import math
import sys


def fail(path, msg):
    sys.exit(f"{path}: {msg}")


def _reject_constant(const):
    # json calls this for the literals NaN / Infinity / -Infinity.
    raise ValueError(f"non-finite JSON literal {const!r}")


def load_strict(path, f):
    """json.load that rejects NaN/Infinity literals AND overflow floats
    (the parser turns '1e999' into inf without consulting parse_constant)."""
    try:
        doc = json.load(f, parse_constant=_reject_constant)
    except ValueError as e:
        fail(path, f"invalid JSON: {e}")

    def scan(node, where):
        if isinstance(node, float) and not math.isfinite(node):
            fail(path, f"{where}: non-finite number")
        elif isinstance(node, dict):
            for k, v in node.items():
                scan(v, f"{where}.{k}")
        elif isinstance(node, list):
            for i, v in enumerate(node):
                scan(v, f"{where}[{i}]")

    scan(doc, "$")
    return doc


def check_registry_snapshot(path, snap, where):
    if not isinstance(snap, dict):
        fail(path, f"{where}: registry snapshot is not an object")
    if not snap:  # "{}" when metrics were disabled for the run
        return
    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            fail(path, f"{where}: snapshot missing '{section}'")
        if not isinstance(snap[section], dict):
            fail(path, f"{where}: '{section}' is not an object")
    for name, v in snap["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"{where}: counter '{name}' is not a non-negative int")
    for name, v in snap["gauges"].items():
        if not isinstance(v, (int, float)) or not math.isfinite(v):
            fail(path, f"{where}: gauge '{name}' is not a finite number")
    for name, h in snap["histograms"].items():
        for field in ("count", "sum", "min", "max", "mean",
                      "p50", "p95", "p99", "buckets"):
            if field not in h:
                fail(path, f"{where}: histogram '{name}' missing '{field}'")
        if not isinstance(h["count"], int) or h["count"] < 0:
            fail(path, f"{where}: histogram '{name}' count is not a "
                       "non-negative int")
        for field in ("sum", "min", "max", "mean", "p50", "p95", "p99"):
            v = h[field]
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                fail(path, f"{where}: histogram '{name}' field '{field}' "
                           "is not a finite number")
        total = 0
        for bucket in h["buckets"]:
            if (not isinstance(bucket, list) or len(bucket) != 2
                    or not (bucket[0] is None or isinstance(bucket[0], int))
                    or not isinstance(bucket[1], int)):
                fail(path, f"{where}: histogram '{name}' has a malformed "
                           f"bucket {bucket!r} (want [bound|null, count])")
            if bucket[1] < 0:
                fail(path, f"{where}: histogram '{name}' bucket {bucket!r} "
                           "has a negative count")
            total += bucket[1]
        if total != h["count"]:
            fail(path, f"{where}: histogram '{name}' bucket counts sum to "
                       f"{total}, expected count={h['count']}")


def find_registries(node, where="metrics"):
    """Yields every {"registry": ...} value nested in the metrics section."""
    if isinstance(node, dict):
        for k, v in node.items():
            if k == "registry":
                yield where, v
            else:
                yield from find_registries(v, f"{where}.{k}")
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from find_registries(v, f"{where}[{i}]")


def check_bench(path, f=None):
    doc = load_strict(path, f if f is not None else open(path))
    for field, want in (("name", str), ("repo_rev", str),
                        ("config", dict), ("metrics", dict)):
        if field not in doc:
            fail(path, f"missing top-level '{field}'")
        if not isinstance(doc[field], want):
            fail(path, f"'{field}' is not a {want.__name__}")
    if not doc["name"]:
        fail(path, "'name' is empty")
    for where, snap in find_registries(doc["metrics"]):
        check_registry_snapshot(path, snap, where)
    print(f"{path}: ok (name={doc['name']}, rev={doc['repo_rev'][:12]})")


def check_trace(path, f=None):
    doc = load_strict(path, f if f is not None else open(path))
    if doc.get("displayTimeUnit") != "ms":
        fail(path, "missing displayTimeUnit 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "'traceEvents' is not a list")
    for i, e in enumerate(events):
        for field in ("name", "cat", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail(path, f"traceEvents[{i}] missing '{field}'")
        if e["ph"] not in ("X", "i"):
            fail(path, f"traceEvents[{i}] has phase {e['ph']!r} "
                       "(TraceRing only emits 'X' and 'i')")
        if e["ph"] == "X" and ("dur" not in e or e["dur"] < 1):
            fail(path, f"traceEvents[{i}] 'X' slice without positive dur")
        if e["ph"] == "i" and e.get("s") != "t":
            fail(path, f"traceEvents[{i}] instant without scope 's':'t'")
    print(f"{path}: ok ({len(events)} trace events)")


# --- self-test ---------------------------------------------------------------

_GOOD_BENCH = """{
  "name": "bench", "repo_rev": "deadbeef", "config": {},
  "metrics": {"registry": {
    "counters": {"c": 3},
    "gauges": {"g": 1.5},
    "histograms": {"h": {"count": 2, "sum": 3, "min": 1, "max": 2,
                         "mean": 1.5, "p50": 1, "p95": 2, "p99": 2,
                         "buckets": [[1, 1], [null, 1]]}}
  }}
}"""

_BAD_BENCHES = {
    "NaN literal": _GOOD_BENCH.replace('"g": 1.5', '"g": NaN'),
    "Infinity literal": _GOOD_BENCH.replace('"g": 1.5', '"g": Infinity'),
    "overflow float": _GOOD_BENCH.replace('"g": 1.5', '"g": 1e999'),
    "negative counter": _GOOD_BENCH.replace('"c": 3', '"c": -3'),
    "negative bucket count": _GOOD_BENCH.replace('[1, 1]', '[1, -1]'),
    "negative histogram count":
        _GOOD_BENCH.replace('"count": 2', '"count": -2'),
    "bucket sum mismatch": _GOOD_BENCH.replace('[1, 1]', '[1, 5]'),
}


def self_test():
    import io

    check_bench("<good>", io.StringIO(_GOOD_BENCH))

    accepted = []
    for name, doc in _BAD_BENCHES.items():
        try:
            check_bench(f"<bad: {name}>", io.StringIO(doc))
            accepted.append(name)
        except SystemExit as e:
            print(f"rejected as expected [{name}]: {e}")
    if accepted:
        sys.exit(f"self-test FAILED: accepted bad documents: {accepted}")
    print("self-test: ok")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    if argv[1] == "--self-test":
        self_test()
        return 0
    if argv[1] == "--trace":
        if len(argv) < 3:
            sys.exit("--trace requires at least one file")
        for path in argv[2:]:
            check_trace(path)
    else:
        for path in argv[1:]:
            check_bench(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
