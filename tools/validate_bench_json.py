#!/usr/bin/env python3
"""Validate exported observability JSON against its expected schema.

Two modes:

  validate_bench_json.py BENCH_foo.json [...]
      Checks the canonical BenchReport schema every bench binary emits:
      {"name": str, "repo_rev": str, "config": obj, "metrics": obj}.
      Any embedded metrics-registry snapshot (a "registry" value) is
      checked recursively: counters/gauges/histograms with well-formed
      histogram summaries and sparse bucket lists.

  validate_bench_json.py --trace trace.json [...]
      Checks Chrome trace_event JSON as written by TraceRing.ToChromeJson
      / the shell's .trace command: displayTimeUnit plus a traceEvents
      list of "X" slices (with dur) and "i" instants.

Exits non-zero with a message on the first violation. Used by the CI
observability smoke step; runnable locally on any checked-in BENCH file.
"""

import json
import sys


def fail(path, msg):
    sys.exit(f"{path}: {msg}")


def check_registry_snapshot(path, snap, where):
    if not isinstance(snap, dict):
        fail(path, f"{where}: registry snapshot is not an object")
    if not snap:  # "{}" when metrics were disabled for the run
        return
    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            fail(path, f"{where}: snapshot missing '{section}'")
        if not isinstance(snap[section], dict):
            fail(path, f"{where}: '{section}' is not an object")
    for name, v in snap["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(path, f"{where}: counter '{name}' is not a non-negative int")
    for name, v in snap["gauges"].items():
        if not isinstance(v, (int, float)):
            fail(path, f"{where}: gauge '{name}' is not a number")
    for name, h in snap["histograms"].items():
        for field in ("count", "sum", "min", "max", "mean",
                      "p50", "p95", "p99", "buckets"):
            if field not in h:
                fail(path, f"{where}: histogram '{name}' missing '{field}'")
        total = 0
        for bucket in h["buckets"]:
            if (not isinstance(bucket, list) or len(bucket) != 2
                    or not (bucket[0] is None or isinstance(bucket[0], int))
                    or not isinstance(bucket[1], int)):
                fail(path, f"{where}: histogram '{name}' has a malformed "
                           f"bucket {bucket!r} (want [bound|null, count])")
            total += bucket[1]
        if total != h["count"]:
            fail(path, f"{where}: histogram '{name}' bucket counts sum to "
                       f"{total}, expected count={h['count']}")


def find_registries(node, where="metrics"):
    """Yields every {"registry": ...} value nested in the metrics section."""
    if isinstance(node, dict):
        for k, v in node.items():
            if k == "registry":
                yield where, v
            else:
                yield from find_registries(v, f"{where}.{k}")
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from find_registries(v, f"{where}[{i}]")


def check_bench(path):
    with open(path) as f:
        doc = json.load(f)
    for field, want in (("name", str), ("repo_rev", str),
                        ("config", dict), ("metrics", dict)):
        if field not in doc:
            fail(path, f"missing top-level '{field}'")
        if not isinstance(doc[field], want):
            fail(path, f"'{field}' is not a {want.__name__}")
    if not doc["name"]:
        fail(path, "'name' is empty")
    for where, snap in find_registries(doc["metrics"]):
        check_registry_snapshot(path, snap, where)
    print(f"{path}: ok (name={doc['name']}, rev={doc['repo_rev'][:12]})")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("displayTimeUnit") != "ms":
        fail(path, "missing displayTimeUnit 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "'traceEvents' is not a list")
    for i, e in enumerate(events):
        for field in ("name", "cat", "ph", "ts", "pid", "tid"):
            if field not in e:
                fail(path, f"traceEvents[{i}] missing '{field}'")
        if e["ph"] not in ("X", "i"):
            fail(path, f"traceEvents[{i}] has phase {e['ph']!r} "
                       "(TraceRing only emits 'X' and 'i')")
        if e["ph"] == "X" and ("dur" not in e or e["dur"] < 1):
            fail(path, f"traceEvents[{i}] 'X' slice without positive dur")
        if e["ph"] == "i" and e.get("s") != "t":
            fail(path, f"traceEvents[{i}] instant without scope 's':'t'")
    print(f"{path}: ok ({len(events)} trace events)")


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    if argv[1] == "--trace":
        if len(argv) < 3:
            sys.exit("--trace requires at least one file")
        for path in argv[2:]:
            check_trace(path)
    else:
        for path in argv[1:]:
            check_bench(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
