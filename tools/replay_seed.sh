#!/usr/bin/env sh
# Replay a failing chaos seed locally, exactly as the CI chaos step ran it.
#
#   tools/replay_seed.sh SEED [EVENTS [SYMS]]
#
# Builds chaos_run if needed, replays the seed twice to confirm the
# failure is deterministic, and shrinks it to a minimal reproducer.
# Failing seeds appear in the CI chaos job's log and artifact
# (chaos-failing-seeds.txt); paste one here.
set -eu

if [ $# -lt 1 ]; then
  echo "usage: $0 SEED [EVENTS [SYMS]]" >&2
  exit 2
fi

SEED="$1"
EVENTS="${2:-120}"
SYMS="${3:-6}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"

if [ ! -x "$BUILD_DIR/tools/chaos_run" ]; then
  echo ">> building chaos_run in $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" > /dev/null
  cmake --build "$BUILD_DIR" --target chaos_run -j > /dev/null
fi

RUN="$BUILD_DIR/tools/chaos_run"

echo ">> replay 1"
if "$RUN" --seed "$SEED" --events "$EVENTS" --syms "$SYMS" --verbose; then
  echo ">> seed $SEED passes here: the failure did not reproduce."
  echo ">> Check that this tree matches the failing CI revision and that"
  echo ">> EVENTS/SYMS match the CI invocation."
  exit 0
fi

echo ">> replay 2 (confirming determinism)"
"$RUN" --seed "$SEED" --events "$EVENTS" --syms "$SYMS" || true

echo ">> shrinking to a minimal reproducer"
"$RUN" --seed "$SEED" --events "$EVENTS" --syms "$SYMS" --shrink || true
exit 1
