file(REMOVE_RECURSE
  "CMakeFiles/workload_calibration_test.dir/workload_calibration_test.cc.o"
  "CMakeFiles/workload_calibration_test.dir/workload_calibration_test.cc.o.d"
  "workload_calibration_test"
  "workload_calibration_test.pdb"
  "workload_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
