# Empty dependencies file for workload_calibration_test.
# This may be replaced when dependencies are built.
