# Empty compiler generated dependencies file for expr_eval_test.
# This may be replaced when dependencies are built.
