# Empty dependencies file for transition_tables_test.
# This may be replaced when dependencies are built.
