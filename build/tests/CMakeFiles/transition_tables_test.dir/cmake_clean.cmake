file(REMOVE_RECURSE
  "CMakeFiles/transition_tables_test.dir/transition_tables_test.cc.o"
  "CMakeFiles/transition_tables_test.dir/transition_tables_test.cc.o.d"
  "transition_tables_test"
  "transition_tables_test.pdb"
  "transition_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
