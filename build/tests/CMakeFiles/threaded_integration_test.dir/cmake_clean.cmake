file(REMOVE_RECURSE
  "CMakeFiles/threaded_integration_test.dir/threaded_integration_test.cc.o"
  "CMakeFiles/threaded_integration_test.dir/threaded_integration_test.cc.o.d"
  "threaded_integration_test"
  "threaded_integration_test.pdb"
  "threaded_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
