file(REMOVE_RECURSE
  "CMakeFiles/lexer_parser_test.dir/lexer_parser_test.cc.o"
  "CMakeFiles/lexer_parser_test.dir/lexer_parser_test.cc.o.d"
  "lexer_parser_test"
  "lexer_parser_test.pdb"
  "lexer_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexer_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
