file(REMOVE_RECURSE
  "CMakeFiles/rules_paper_example_test.dir/rules_paper_example_test.cc.o"
  "CMakeFiles/rules_paper_example_test.dir/rules_paper_example_test.cc.o.d"
  "rules_paper_example_test"
  "rules_paper_example_test.pdb"
  "rules_paper_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
