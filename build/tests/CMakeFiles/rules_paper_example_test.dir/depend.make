# Empty dependencies file for rules_paper_example_test.
# This may be replaced when dependencies are built.
