file(REMOVE_RECURSE
  "CMakeFiles/pta_integration_test.dir/pta_integration_test.cc.o"
  "CMakeFiles/pta_integration_test.dir/pta_integration_test.cc.o.d"
  "pta_integration_test"
  "pta_integration_test.pdb"
  "pta_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
