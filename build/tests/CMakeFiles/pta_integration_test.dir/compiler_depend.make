# Empty compiler generated dependencies file for pta_integration_test.
# This may be replaced when dependencies are built.
