file(REMOVE_RECURSE
  "CMakeFiles/rules_engine_test.dir/rules_engine_test.cc.o"
  "CMakeFiles/rules_engine_test.dir/rules_engine_test.cc.o.d"
  "rules_engine_test"
  "rules_engine_test.pdb"
  "rules_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
