# Empty compiler generated dependencies file for rules_engine_test.
# This may be replaced when dependencies are built.
