# Empty dependencies file for pta_property_test.
# This may be replaced when dependencies are built.
