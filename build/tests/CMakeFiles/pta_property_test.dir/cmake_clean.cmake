file(REMOVE_RECURSE
  "CMakeFiles/pta_property_test.dir/pta_property_test.cc.o"
  "CMakeFiles/pta_property_test.dir/pta_property_test.cc.o.d"
  "pta_property_test"
  "pta_property_test.pdb"
  "pta_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
