file(REMOVE_RECURSE
  "CMakeFiles/sql_basic_test.dir/sql_basic_test.cc.o"
  "CMakeFiles/sql_basic_test.dir/sql_basic_test.cc.o.d"
  "sql_basic_test"
  "sql_basic_test.pdb"
  "sql_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
