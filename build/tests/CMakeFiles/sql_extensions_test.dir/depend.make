# Empty dependencies file for sql_extensions_test.
# This may be replaced when dependencies are built.
