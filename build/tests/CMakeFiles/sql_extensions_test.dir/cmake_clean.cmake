file(REMOVE_RECURSE
  "CMakeFiles/sql_extensions_test.dir/sql_extensions_test.cc.o"
  "CMakeFiles/sql_extensions_test.dir/sql_extensions_test.cc.o.d"
  "sql_extensions_test"
  "sql_extensions_test.pdb"
  "sql_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
