file(REMOVE_RECURSE
  "CMakeFiles/temp_table_test.dir/temp_table_test.cc.o"
  "CMakeFiles/temp_table_test.dir/temp_table_test.cc.o.d"
  "temp_table_test"
  "temp_table_test.pdb"
  "temp_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temp_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
