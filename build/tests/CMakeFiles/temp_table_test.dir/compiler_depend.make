# Empty compiler generated dependencies file for temp_table_test.
# This may be replaced when dependencies are built.
