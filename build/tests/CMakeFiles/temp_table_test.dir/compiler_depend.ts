# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for temp_table_test.
