# Empty compiler generated dependencies file for sql_executor_test.
# This may be replaced when dependencies are built.
