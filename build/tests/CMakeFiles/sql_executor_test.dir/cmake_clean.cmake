file(REMOVE_RECURSE
  "CMakeFiles/sql_executor_test.dir/sql_executor_test.cc.o"
  "CMakeFiles/sql_executor_test.dir/sql_executor_test.cc.o.d"
  "sql_executor_test"
  "sql_executor_test.pdb"
  "sql_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
