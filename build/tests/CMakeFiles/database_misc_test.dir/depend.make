# Empty dependencies file for database_misc_test.
# This may be replaced when dependencies are built.
