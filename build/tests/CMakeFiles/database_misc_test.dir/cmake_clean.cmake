file(REMOVE_RECURSE
  "CMakeFiles/database_misc_test.dir/database_misc_test.cc.o"
  "CMakeFiles/database_misc_test.dir/database_misc_test.cc.o.d"
  "database_misc_test"
  "database_misc_test.pdb"
  "database_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
