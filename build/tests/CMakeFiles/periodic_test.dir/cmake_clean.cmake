file(REMOVE_RECURSE
  "CMakeFiles/periodic_test.dir/periodic_test.cc.o"
  "CMakeFiles/periodic_test.dir/periodic_test.cc.o.d"
  "periodic_test"
  "periodic_test.pdb"
  "periodic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
