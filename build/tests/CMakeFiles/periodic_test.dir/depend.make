# Empty dependencies file for periodic_test.
# This may be replaced when dependencies are built.
