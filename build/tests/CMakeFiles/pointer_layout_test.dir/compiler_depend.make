# Empty compiler generated dependencies file for pointer_layout_test.
# This may be replaced when dependencies are built.
