file(REMOVE_RECURSE
  "CMakeFiles/pointer_layout_test.dir/pointer_layout_test.cc.o"
  "CMakeFiles/pointer_layout_test.dir/pointer_layout_test.cc.o.d"
  "pointer_layout_test"
  "pointer_layout_test.pdb"
  "pointer_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
