# Empty dependencies file for viewmaint_test.
# This may be replaced when dependencies are built.
