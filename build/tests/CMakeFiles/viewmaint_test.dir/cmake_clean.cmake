file(REMOVE_RECURSE
  "CMakeFiles/viewmaint_test.dir/viewmaint_test.cc.o"
  "CMakeFiles/viewmaint_test.dir/viewmaint_test.cc.o.d"
  "viewmaint_test"
  "viewmaint_test.pdb"
  "viewmaint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viewmaint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
