file(REMOVE_RECURSE
  "CMakeFiles/feed_test.dir/feed_test.cc.o"
  "CMakeFiles/feed_test.dir/feed_test.cc.o.d"
  "feed_test"
  "feed_test.pdb"
  "feed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
