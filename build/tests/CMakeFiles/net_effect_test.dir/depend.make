# Empty dependencies file for net_effect_test.
# This may be replaced when dependencies are built.
