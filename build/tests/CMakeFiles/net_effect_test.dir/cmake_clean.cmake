file(REMOVE_RECURSE
  "CMakeFiles/net_effect_test.dir/net_effect_test.cc.o"
  "CMakeFiles/net_effect_test.dir/net_effect_test.cc.o.d"
  "net_effect_test"
  "net_effect_test.pdb"
  "net_effect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_effect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
