# Empty dependencies file for unique_manager_test.
# This may be replaced when dependencies are built.
