file(REMOVE_RECURSE
  "CMakeFiles/unique_manager_test.dir/unique_manager_test.cc.o"
  "CMakeFiles/unique_manager_test.dir/unique_manager_test.cc.o.d"
  "unique_manager_test"
  "unique_manager_test.pdb"
  "unique_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unique_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
