file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_ablation.dir/bench_storage_ablation.cc.o"
  "CMakeFiles/bench_storage_ablation.dir/bench_storage_ablation.cc.o.d"
  "bench_storage_ablation"
  "bench_storage_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
