# Empty compiler generated dependencies file for bench_storage_ablation.
# This may be replaced when dependencies are built.
