# Empty compiler generated dependencies file for bench_comp_prices.
# This may be replaced when dependencies are built.
