file(REMOVE_RECURSE
  "CMakeFiles/bench_comp_prices.dir/bench_comp_prices.cc.o"
  "CMakeFiles/bench_comp_prices.dir/bench_comp_prices.cc.o.d"
  "bench_comp_prices"
  "bench_comp_prices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comp_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
