file(REMOVE_RECURSE
  "CMakeFiles/bench_index_ablation.dir/bench_index_ablation.cc.o"
  "CMakeFiles/bench_index_ablation.dir/bench_index_ablation.cc.o.d"
  "bench_index_ablation"
  "bench_index_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
