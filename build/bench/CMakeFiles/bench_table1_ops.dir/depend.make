# Empty dependencies file for bench_table1_ops.
# This may be replaced when dependencies are built.
