file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ops.dir/bench_table1_ops.cc.o"
  "CMakeFiles/bench_table1_ops.dir/bench_table1_ops.cc.o.d"
  "bench_table1_ops"
  "bench_table1_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
