file(REMOVE_RECURSE
  "CMakeFiles/bench_unique_manager.dir/bench_unique_manager.cc.o"
  "CMakeFiles/bench_unique_manager.dir/bench_unique_manager.cc.o.d"
  "bench_unique_manager"
  "bench_unique_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unique_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
