# Empty compiler generated dependencies file for bench_unique_manager.
# This may be replaced when dependencies are built.
