file(REMOVE_RECURSE
  "CMakeFiles/bench_option_prices.dir/bench_option_prices.cc.o"
  "CMakeFiles/bench_option_prices.dir/bench_option_prices.cc.o.d"
  "bench_option_prices"
  "bench_option_prices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_option_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
