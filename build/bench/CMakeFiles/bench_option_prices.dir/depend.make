# Empty dependencies file for bench_option_prices.
# This may be replaced when dependencies are built.
