file(REMOVE_RECURSE
  "CMakeFiles/sensor_monitor.dir/sensor_monitor.cc.o"
  "CMakeFiles/sensor_monitor.dir/sensor_monitor.cc.o.d"
  "sensor_monitor"
  "sensor_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
