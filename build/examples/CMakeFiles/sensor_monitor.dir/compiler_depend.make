# Empty compiler generated dependencies file for sensor_monitor.
# This may be replaced when dependencies are built.
