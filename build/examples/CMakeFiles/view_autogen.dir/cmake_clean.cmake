file(REMOVE_RECURSE
  "CMakeFiles/view_autogen.dir/view_autogen.cc.o"
  "CMakeFiles/view_autogen.dir/view_autogen.cc.o.d"
  "view_autogen"
  "view_autogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_autogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
