# Empty dependencies file for view_autogen.
# This may be replaced when dependencies are built.
