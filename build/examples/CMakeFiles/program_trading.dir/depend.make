# Empty dependencies file for program_trading.
# This may be replaced when dependencies are built.
