file(REMOVE_RECURSE
  "CMakeFiles/program_trading.dir/program_trading.cc.o"
  "CMakeFiles/program_trading.dir/program_trading.cc.o.d"
  "program_trading"
  "program_trading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_trading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
