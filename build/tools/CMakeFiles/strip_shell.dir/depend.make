# Empty dependencies file for strip_shell.
# This may be replaced when dependencies are built.
