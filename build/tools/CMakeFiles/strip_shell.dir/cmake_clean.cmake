file(REMOVE_RECURSE
  "CMakeFiles/strip_shell.dir/strip_shell.cc.o"
  "CMakeFiles/strip_shell.dir/strip_shell.cc.o.d"
  "strip_shell"
  "strip_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strip_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
