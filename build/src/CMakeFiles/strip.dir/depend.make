# Empty dependencies file for strip.
# This may be replaced when dependencies are built.
