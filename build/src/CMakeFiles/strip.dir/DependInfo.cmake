
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strip/common/clock.cc" "src/CMakeFiles/strip.dir/strip/common/clock.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/common/clock.cc.o.d"
  "/root/repo/src/strip/common/rng.cc" "src/CMakeFiles/strip.dir/strip/common/rng.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/common/rng.cc.o.d"
  "/root/repo/src/strip/common/string_util.cc" "src/CMakeFiles/strip.dir/strip/common/string_util.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/common/string_util.cc.o.d"
  "/root/repo/src/strip/engine/cursor.cc" "src/CMakeFiles/strip.dir/strip/engine/cursor.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/engine/cursor.cc.o.d"
  "/root/repo/src/strip/engine/database.cc" "src/CMakeFiles/strip.dir/strip/engine/database.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/engine/database.cc.o.d"
  "/root/repo/src/strip/engine/function_registry.cc" "src/CMakeFiles/strip.dir/strip/engine/function_registry.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/engine/function_registry.cc.o.d"
  "/root/repo/src/strip/feed/feed.cc" "src/CMakeFiles/strip.dir/strip/feed/feed.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/feed/feed.cc.o.d"
  "/root/repo/src/strip/market/app_functions.cc" "src/CMakeFiles/strip.dir/strip/market/app_functions.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/market/app_functions.cc.o.d"
  "/root/repo/src/strip/market/black_scholes.cc" "src/CMakeFiles/strip.dir/strip/market/black_scholes.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/market/black_scholes.cc.o.d"
  "/root/repo/src/strip/market/populate.cc" "src/CMakeFiles/strip.dir/strip/market/populate.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/market/populate.cc.o.d"
  "/root/repo/src/strip/market/pta_runner.cc" "src/CMakeFiles/strip.dir/strip/market/pta_runner.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/market/pta_runner.cc.o.d"
  "/root/repo/src/strip/market/trace.cc" "src/CMakeFiles/strip.dir/strip/market/trace.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/market/trace.cc.o.d"
  "/root/repo/src/strip/rules/net_effect.cc" "src/CMakeFiles/strip.dir/strip/rules/net_effect.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/rules/net_effect.cc.o.d"
  "/root/repo/src/strip/rules/rule_def.cc" "src/CMakeFiles/strip.dir/strip/rules/rule_def.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/rules/rule_def.cc.o.d"
  "/root/repo/src/strip/rules/rule_engine.cc" "src/CMakeFiles/strip.dir/strip/rules/rule_engine.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/rules/rule_engine.cc.o.d"
  "/root/repo/src/strip/rules/transition_tables.cc" "src/CMakeFiles/strip.dir/strip/rules/transition_tables.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/rules/transition_tables.cc.o.d"
  "/root/repo/src/strip/rules/unique_manager.cc" "src/CMakeFiles/strip.dir/strip/rules/unique_manager.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/rules/unique_manager.cc.o.d"
  "/root/repo/src/strip/sql/ast.cc" "src/CMakeFiles/strip.dir/strip/sql/ast.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/sql/ast.cc.o.d"
  "/root/repo/src/strip/sql/executor.cc" "src/CMakeFiles/strip.dir/strip/sql/executor.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/sql/executor.cc.o.d"
  "/root/repo/src/strip/sql/expr_eval.cc" "src/CMakeFiles/strip.dir/strip/sql/expr_eval.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/sql/expr_eval.cc.o.d"
  "/root/repo/src/strip/sql/lexer.cc" "src/CMakeFiles/strip.dir/strip/sql/lexer.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/sql/lexer.cc.o.d"
  "/root/repo/src/strip/sql/parser.cc" "src/CMakeFiles/strip.dir/strip/sql/parser.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/sql/parser.cc.o.d"
  "/root/repo/src/strip/sql/plan.cc" "src/CMakeFiles/strip.dir/strip/sql/plan.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/sql/plan.cc.o.d"
  "/root/repo/src/strip/sql/token.cc" "src/CMakeFiles/strip.dir/strip/sql/token.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/sql/token.cc.o.d"
  "/root/repo/src/strip/storage/bound_table_set.cc" "src/CMakeFiles/strip.dir/strip/storage/bound_table_set.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/storage/bound_table_set.cc.o.d"
  "/root/repo/src/strip/storage/catalog.cc" "src/CMakeFiles/strip.dir/strip/storage/catalog.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/storage/catalog.cc.o.d"
  "/root/repo/src/strip/storage/index.cc" "src/CMakeFiles/strip.dir/strip/storage/index.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/storage/index.cc.o.d"
  "/root/repo/src/strip/storage/rbtree.cc" "src/CMakeFiles/strip.dir/strip/storage/rbtree.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/storage/rbtree.cc.o.d"
  "/root/repo/src/strip/storage/schema.cc" "src/CMakeFiles/strip.dir/strip/storage/schema.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/storage/schema.cc.o.d"
  "/root/repo/src/strip/storage/table.cc" "src/CMakeFiles/strip.dir/strip/storage/table.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/storage/table.cc.o.d"
  "/root/repo/src/strip/storage/temp_table.cc" "src/CMakeFiles/strip.dir/strip/storage/temp_table.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/storage/temp_table.cc.o.d"
  "/root/repo/src/strip/storage/value.cc" "src/CMakeFiles/strip.dir/strip/storage/value.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/storage/value.cc.o.d"
  "/root/repo/src/strip/txn/lock_manager.cc" "src/CMakeFiles/strip.dir/strip/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/txn/lock_manager.cc.o.d"
  "/root/repo/src/strip/txn/scheduler.cc" "src/CMakeFiles/strip.dir/strip/txn/scheduler.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/txn/scheduler.cc.o.d"
  "/root/repo/src/strip/txn/simulated_executor.cc" "src/CMakeFiles/strip.dir/strip/txn/simulated_executor.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/txn/simulated_executor.cc.o.d"
  "/root/repo/src/strip/txn/task_queues.cc" "src/CMakeFiles/strip.dir/strip/txn/task_queues.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/txn/task_queues.cc.o.d"
  "/root/repo/src/strip/txn/threaded_executor.cc" "src/CMakeFiles/strip.dir/strip/txn/threaded_executor.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/txn/threaded_executor.cc.o.d"
  "/root/repo/src/strip/txn/txn_log.cc" "src/CMakeFiles/strip.dir/strip/txn/txn_log.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/txn/txn_log.cc.o.d"
  "/root/repo/src/strip/viewmaint/rule_gen.cc" "src/CMakeFiles/strip.dir/strip/viewmaint/rule_gen.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/viewmaint/rule_gen.cc.o.d"
  "/root/repo/src/strip/viewmaint/view_def.cc" "src/CMakeFiles/strip.dir/strip/viewmaint/view_def.cc.o" "gcc" "src/CMakeFiles/strip.dir/strip/viewmaint/view_def.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
