file(REMOVE_RECURSE
  "libstrip.a"
)
